//! Optimizer configuration: rule enablement and knobs.
//!
//! The paper evaluates competing optimizers by "disabling various rules in
//! our optimizer"; this module makes those experiments first-class. Rule
//! names are the stable strings returned by each rule's `name()`.

use std::collections::HashSet;

/// Stable rule names (see `rules::transform` / `rules::implement`).
pub mod rule_names {
    /// Split a conjunctive selection.
    pub const SELECT_SPLIT: &str = "select-split";
    /// Commute Select with Mat (both directions).
    pub const SELECT_MAT_SWAP: &str = "select-mat-swap";
    /// Commute Select with Unnest (both directions).
    pub const SELECT_UNNEST_SWAP: &str = "select-unnest-swap";
    /// Push Select into join inputs.
    pub const SELECT_JOIN_PUSH: &str = "select-join-push";
    /// Merge a selection spanning both join inputs into the join
    /// predicate (and split it back out).
    pub const SELECT_INTO_JOIN: &str = "select-into-join";
    /// Materialize → Join.
    pub const MAT_TO_JOIN: &str = "mat-to-join";
    /// Join commutativity.
    pub const JOIN_COMMUTE: &str = "join-commutativity";
    /// Join associativity.
    pub const JOIN_ASSOC: &str = "join-associativity";
    /// Commute adjacent Mat operators.
    pub const MAT_MAT_SWAP: &str = "mat-mat-swap";
    /// Push Mat into the join side holding its source.
    pub const MAT_JOIN_PUSH: &str = "mat-join-push";
    /// Move Select through set operators.
    pub const SELECT_SETOP_PUSH: &str = "select-setop-push";
    /// Move Mat through set operators.
    pub const MAT_SETOP_PUSH: &str = "mat-setop-push";
    /// Collapse select–materialize–get into an index scan.
    pub const COLLAPSE_TO_INDEX_SCAN: &str = "collapse-to-index-scan";
    /// File scan implementation of Get.
    pub const FILE_SCAN: &str = "file-scan";
    /// Filter implementation of Select.
    pub const FILTER: &str = "filter";
    /// Hybrid hash join implementation of Join.
    pub const HYBRID_HASH_JOIN: &str = "hybrid-hash-join";
    /// Pointer join implementation of Join.
    pub const POINTER_JOIN: &str = "pointer-join";
    /// Assembly implementation of Mat.
    pub const ASSEMBLY_MAT: &str = "assembly-mat";
    /// Alg-Unnest implementation of Unnest.
    pub const ALG_UNNEST: &str = "alg-unnest";
    /// Alg-Project implementation of Project.
    pub const ALG_PROJECT: &str = "alg-project";
    /// Hash set-operation implementations.
    pub const HASH_SET_OP: &str = "hash-set-op";
    /// Assembly as the present-in-memory enforcer.
    pub const ASSEMBLY_ENFORCER: &str = "assembly-enforcer";
    /// Warm-start assembly implementation of Mat (Lesson 7 extension).
    pub const WARM_ASSEMBLY: &str = "warm-assembly";
    /// Sort as the order enforcer (sort-order extension).
    pub const SORT_ENFORCER: &str = "sort-enforcer";
    /// Ordered full-index scan implementation of Get (sort-order
    /// extension).
    pub const ORDERED_INDEX_SCAN: &str = "ordered-index-scan";
    /// Merge-join implementation of value equi-joins (sort-order
    /// extension).
    pub const MERGE_JOIN: &str = "merge-join";
}

/// Every stable rule name, for tooling (shells, sweeps).
pub const ALL_RULE_NAMES: &[&str] = &[
    rule_names::SELECT_SPLIT,
    rule_names::SELECT_MAT_SWAP,
    rule_names::SELECT_UNNEST_SWAP,
    rule_names::SELECT_JOIN_PUSH,
    rule_names::SELECT_INTO_JOIN,
    rule_names::SELECT_SETOP_PUSH,
    rule_names::MAT_TO_JOIN,
    rule_names::JOIN_COMMUTE,
    rule_names::JOIN_ASSOC,
    rule_names::MAT_MAT_SWAP,
    rule_names::MAT_JOIN_PUSH,
    rule_names::MAT_SETOP_PUSH,
    rule_names::COLLAPSE_TO_INDEX_SCAN,
    rule_names::FILE_SCAN,
    rule_names::FILTER,
    rule_names::HYBRID_HASH_JOIN,
    rule_names::POINTER_JOIN,
    rule_names::ASSEMBLY_MAT,
    rule_names::ALG_UNNEST,
    rule_names::ALG_PROJECT,
    rule_names::HASH_SET_OP,
    rule_names::ASSEMBLY_ENFORCER,
    rule_names::WARM_ASSEMBLY,
    rule_names::SORT_ENFORCER,
    rule_names::ORDERED_INDEX_SCAN,
    rule_names::MERGE_JOIN,
];

/// Resolves a user-typed rule name to its stable `&'static str` (needed
/// because [`OptimizerConfig::disabled_rules`] stores static strings).
pub fn rule_name_by_str(name: &str) -> Option<&'static str> {
    ALL_RULE_NAMES.iter().copied().find(|&n| n == name)
}

/// Optimizer configuration.
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    /// Rules excluded from the generated optimizer.
    pub disabled_rules: HashSet<&'static str>,
    /// Assembly's window of open references (1 disables the elevator
    /// advantage — the paper's "W/o Window" row).
    pub assembly_window: u32,
    /// Enable the "warm-start assembly" algorithm (the paper's Lesson 7
    /// future-work suggestion). Off by default so the reproduction matches
    /// the 1993 rule set; the extensibility example and ablation bench
    /// switch it on.
    pub enable_warm_assembly: bool,
    /// Branch-and-bound pruning (off for paper-faithful exhaustive
    /// search).
    pub prune: bool,
    /// Index names the optimizer must pretend do not exist — the
    /// compile-time half of ObjectStore-style dynamic plan selection
    /// (see [`crate::dynamic`]).
    pub ignored_indexes: Vec<String>,
    /// Debug mode: statically verify every expression the memo holds at
    /// the end of search (not just the winning plan). Excluded from
    /// [`Self::fingerprint`] — verification never influences plan choice,
    /// so toggling it must not invalidate cached plans.
    pub verify_search: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            disabled_rules: HashSet::new(),
            assembly_window: 8192,
            enable_warm_assembly: false,
            prune: false,
            ignored_indexes: Vec::new(),
            verify_search: false,
        }
    }
}

impl OptimizerConfig {
    /// All rules enabled — the paper's "All Rules" configuration.
    pub fn all_rules() -> Self {
        Self::default()
    }

    /// Disables the named rules.
    pub fn without(rules: &[&'static str]) -> Self {
        OptimizerConfig {
            disabled_rules: rules.iter().copied().collect(),
            ..Default::default()
        }
    }

    /// The paper's "W/o Comm." configuration: join commutativity disabled,
    /// forcing naive pointer chasing (hybrid hash join is directional, so
    /// without commutativity the Mat→Join orientation has no efficient
    /// implementation).
    pub fn without_join_commutativity() -> Self {
        Self::without(&[rule_names::JOIN_COMMUTE])
    }

    /// The paper's "W/o Window" configuration: commutativity still
    /// disabled *and* the assembly window restricted to one, making
    /// assembly "similar to the lookup component of an unclustered index
    /// scan".
    pub fn without_window() -> Self {
        OptimizerConfig {
            assembly_window: 1,
            ..Self::without_join_commutativity()
        }
    }

    /// Whether a rule is enabled.
    pub fn enabled(&self, name: &str) -> bool {
        !self.disabled_rules.contains(name)
    }

    /// Returns the configuration with an extra rule disabled.
    pub fn and_without(mut self, rule: &'static str) -> Self {
        self.disabled_rules.insert(rule);
        self
    }

    /// A stable 64-bit FNV-1a fingerprint of every field that influences
    /// plan choice. Plan-cache keys include it so a plan optimized under
    /// one rule configuration is never served under another.
    pub fn fingerprint(&self) -> u64 {
        let mut disabled: Vec<&str> = self.disabled_rules.iter().copied().collect();
        disabled.sort_unstable();
        let mut ignored: Vec<&str> = self.ignored_indexes.iter().map(String::as_str).collect();
        ignored.sort_unstable();
        let text = format!(
            "rules:-{disabled:?}|window:{}|warm:{}|prune:{}|noindex:{ignored:?}",
            self.assembly_window, self.enable_warm_assembly, self.prune
        );
        oodb_algebra::fingerprint::fnv1a(text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let c = OptimizerConfig::default();
        assert!(c.enabled(rule_names::JOIN_COMMUTE));
        assert_eq!(c.assembly_window, 8192);
    }

    #[test]
    fn paper_configs() {
        let wo_comm = OptimizerConfig::without_join_commutativity();
        assert!(!wo_comm.enabled(rule_names::JOIN_COMMUTE));
        assert!(wo_comm.enabled(rule_names::MAT_TO_JOIN));
        let wo_window = OptimizerConfig::without_window();
        assert!(!wo_window.enabled(rule_names::JOIN_COMMUTE));
        assert_eq!(wo_window.assembly_window, 1);
    }

    #[test]
    fn chained_disable() {
        let c = OptimizerConfig::all_rules()
            .and_without(rule_names::COLLAPSE_TO_INDEX_SCAN)
            .and_without(rule_names::POINTER_JOIN);
        assert!(!c.enabled(rule_names::COLLAPSE_TO_INDEX_SCAN));
        assert!(!c.enabled(rule_names::POINTER_JOIN));
        assert!(c.enabled(rule_names::FILTER));
    }
}
