//! The plan-space auditor: independent oracles over the generated
//! optimizer.
//!
//! The search engine memoizes one winner per goal and proves nothing
//! about it. This module supplies three static checks that together make
//! regressions in the rule set or the cost model *observable* instead of
//! silently producing worse plans:
//!
//! * **Enumeration oracle** ([`OpenOodb::audit`]): exhaustively
//!   enumerates every physical plan the memo encodes for a (small) query
//!   via [`volcano::enumerate`], re-costs each through the shared
//!   estimator, and reports whether the search's winner is cost-minimal
//!   over the whole space. Callers additionally execute every enumerated
//!   plan and compare result bytes (see `tests/audit.rs` at the
//!   workspace root — this crate has no executor dependency).
//! * **Interval cardinality audit**: every enumerated plan is run
//!   through [`oodb_verify::check_card_intervals`], so a cost-model
//!   estimate escaping its sound `[lo, hi]` bounds fails the audit even
//!   on plans the search would never pick.
//! * **Rule-graph termination** ([`OpenOodb::prove_rules_terminate`])
//!   and **confluence** ([`check_confluence`]): the static half proves
//!   the declared rule signatures admit no generative rewrite cycle; the
//!   operational half re-runs exhaustive exploration under rotated
//!   transformation-rule orderings and demands the identical memo shape
//!   and winner cost — the memo analogue of local confluence on critical
//!   pairs.

use crate::config::OptimizerConfig;
use crate::cost::CostParams;
use crate::model::OodbModel;
use crate::optimizer::{merge_assemblies, plan_cost, seed, OpenOodb};
use crate::rules::rule_set;
use oodb_algebra::{LogicalPlan, PhysProps, PhysicalPlan, QueryEnv, VarSet};
use volcano::{Optimizer, SearchConfig};
// Re-exported so auditor callers (the CLI, scripts) need no direct
// `volcano` dependency.
pub use volcano::{CycleWitness, EnumLimits, TerminationProof};

/// Relative slack for cost comparisons (floating-point accumulation
/// order differs between the search and re-annotation).
const COST_SLACK: f64 = 1e-9;

/// The enumeration oracle's verdict on one query.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Every enumerated plan, annotated (re-costed) through the shared
    /// estimator, assemblies merged — directly executable.
    pub plans: Vec<PhysicalPlan>,
    /// The search's winning plan, identically annotated.
    pub winner: PhysicalPlan,
    /// Re-costed total of the winner (seconds).
    pub winner_cost: f64,
    /// Cheapest re-costed total over the enumerated space
    /// (`f64::INFINITY` when no plan was enumerated).
    pub best_cost: f64,
    /// Whether the winner is cost-minimal over the *complete* space:
    /// false when the enumeration was truncated — a partial oracle
    /// proves nothing.
    pub cost_minimal: bool,
    /// Whether a limit cut the enumeration short.
    pub truncated: bool,
    /// Interval-cardinality diagnostics over every enumerated plan
    /// (empty on a sound cost model).
    pub interval_diags: Vec<oodb_verify::Diagnostic>,
}

impl AuditReport {
    /// Number of plans the oracle enumerated.
    pub fn plans_enumerated(&self) -> usize {
        self.plans.len()
    }

    /// The audit passed outright: complete space, minimal winner, no
    /// interval escapes.
    pub fn sound(&self) -> bool {
        self.cost_minimal && !self.truncated && self.interval_diags.is_empty()
    }
}

impl<'e> OpenOodb<'e> {
    /// Runs the enumeration oracle on a query: optimizes as
    /// [`OpenOodb::optimize`] would, then exhaustively enumerates the
    /// plan space within `limits` and re-costs every member. Pruning is
    /// disabled for the run — the oracle audits the exhaustive search
    /// the paper describes, and branch-and-bound shortcuts would leave
    /// goals unexplored.
    ///
    /// Returns `None` when no feasible plan exists.
    pub fn audit(
        &self,
        plan: &LogicalPlan,
        result_vars: VarSet,
        order: Option<oodb_algebra::SortSpec>,
        limits: EnumLimits,
    ) -> Option<AuditReport> {
        let mut opt = Optimizer::new(&self.model, &self.rules, SearchConfig::default());
        let root = seed(&mut opt.memo, &self.model, plan);
        let props = PhysProps {
            in_memory: self.model.objify(result_vars),
            order,
        };
        let node = opt.run(root, props)?;
        let en = opt.enumerate_bounded(root, props, limits);

        let winner = merge_assemblies(self.annotate(&node));
        let winner_cost = plan_cost(&winner).total();
        let mut plans = Vec::with_capacity(en.plans.len());
        let mut interval_diags = Vec::new();
        let mut best_cost = f64::INFINITY;
        for p in &en.plans {
            let annotated = merge_assemblies(self.annotate(p));
            let cost = plan_cost(&annotated).total();
            best_cost = best_cost.min(cost);
            interval_diags.extend(oodb_verify::check_card_intervals(
                self.model.env,
                &annotated,
            ));
            plans.push(annotated);
        }
        let cost_minimal = !en.truncated
            && !plans.is_empty()
            && winner_cost <= best_cost * (1.0 + COST_SLACK) + COST_SLACK;
        Some(AuditReport {
            plans,
            winner,
            winner_cost,
            best_cost,
            cost_minimal,
            truncated: en.truncated,
            interval_diags,
        })
    }

    /// Proves the configured rule set terminates under memo-based
    /// exploration, or returns the rendered cycle witness. Thin wrapper
    /// over [`volcano::prove_termination`] for the crate's own rule set.
    pub fn prove_rules_terminate(&self) -> Result<TerminationProof, CycleWitness> {
        volcano::prove_termination(&self.rules)
    }
}

/// One exploration run of the confluence check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfluenceRun {
    /// How far the transformation-rule vector was rotated.
    pub rotation: usize,
    /// Memo groups at the exploration fixpoint.
    pub groups: usize,
    /// Memo expressions at the fixpoint.
    pub exprs: usize,
    /// Winner total cost at the goal (`None` if infeasible).
    pub winner_cost: Option<f64>,
}

/// The confluence check's verdict: one run per rule-order rotation.
#[derive(Clone, Debug)]
pub struct ConfluenceReport {
    /// The individual runs, rotation 0 first.
    pub runs: Vec<ConfluenceRun>,
}

impl ConfluenceReport {
    /// All rotations reached the same fixpoint (same memo shape) and the
    /// same winner cost: the rule set is confluent on this query.
    pub fn confluent(&self) -> bool {
        let Some(first) = self.runs.first() else {
            return true;
        };
        self.runs.iter().all(|r| {
            r.groups == first.groups
                && r.exprs == first.exprs
                && match (r.winner_cost, first.winner_cost) {
                    (None, None) => true,
                    (Some(a), Some(b)) => {
                        (a - b).abs() <= COST_SLACK * a.abs().max(b.abs()).max(1.0)
                    }
                    _ => false,
                }
        })
    }
}

/// Tests confluence operationally: explores `plan` to fixpoint under
/// `rotations` rotated orderings of the transformation rules and
/// compares the resulting memo shapes and winner costs. Exhaustive
/// exploration of a confluent rule set reaches the same closure
/// regardless of firing order; a rule whose effect depends on what fired
/// before it (a genuine critical-pair divergence) shows up as differing
/// group/expression counts or a different winner.
pub fn check_confluence(
    env: &QueryEnv,
    params: CostParams,
    config: &OptimizerConfig,
    plan: &LogicalPlan,
    result_vars: VarSet,
    rotations: usize,
) -> ConfluenceReport {
    let mut runs = Vec::new();
    for rotation in 0..rotations.max(1) {
        let mut rules = rule_set(config);
        if !rules.transforms.is_empty() {
            let n = rules.transforms.len();
            rules.transforms.rotate_left(rotation % n);
        }
        let model = OodbModel::new(env, params, config.clone());
        let mut opt = Optimizer::new(&model, &rules, SearchConfig::default());
        let root = seed(&mut opt.memo, &model, plan);
        opt.explore_all();
        let props = PhysProps::in_memory(model.objify(result_vars));
        let winner = opt.optimize_group(root, props);
        runs.push(ConfluenceRun {
            rotation,
            groups: opt.memo.group_count(),
            exprs: opt.memo.expr_count(),
            winner_cost: winner.map(|w| w.total.total()),
        });
    }
    ConfluenceReport { runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_algebra::QueryBuilder;
    use oodb_object::paper::paper_model;
    use oodb_object::Value;
    use volcano::{Expr, Memo, Rewrite, RuleSignature, TransformRule};

    /// Query 2: Select over Mat over Get — itself a critical pair
    /// (SelectMatSwap and MatToJoin both fire on the Mat).
    fn query2() -> (QueryEnv, LogicalPlan, VarSet) {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (matd, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
        let pred = qb.eq_const(cm, m.ids.person_name, Value::str("Joe"));
        let q = qb.select(matd, pred);
        (qb.into_env(), q, VarSet::single(c))
    }

    #[test]
    fn full_rule_set_proves_termination() {
        let (env, _, _) = query2();
        let opt = OpenOodb::with_config(&env, OptimizerConfig::all_rules());
        let proof = opt.prove_rules_terminate().expect("rule set terminates");
        assert_eq!(proof.rules, 12, "all twelve transforms signed");
        assert!(proof.edges > 0);
        // The swap/push rules feed each other: safe cycles exist.
        assert!(proof.cyclic_rules > 0);
    }

    #[test]
    fn audit_query2_winner_is_cost_minimal_over_the_space() {
        let (env, q, vars) = query2();
        let opt = OpenOodb::with_config(&env, OptimizerConfig::all_rules());
        let report = opt
            .audit(&q, vars, None, EnumLimits::default())
            .expect("feasible");
        assert!(!report.truncated, "query 2 space fits default limits");
        assert!(
            report.plans_enumerated() >= 2,
            "collapse + at least one assembly-family plan, got {}",
            report.plans_enumerated()
        );
        assert!(
            report.cost_minimal,
            "winner {} vs best {}",
            report.winner_cost, report.best_cost
        );
        assert!(
            report.interval_diags.is_empty(),
            "sound estimates on every plan: {:?}",
            report.interval_diags
        );
        assert!(report.sound());
    }

    #[test]
    fn audit_truncation_is_reported_not_hidden() {
        let (env, q, vars) = query2();
        let opt = OpenOodb::with_config(&env, OptimizerConfig::all_rules());
        let report = opt
            .audit(
                &q,
                vars,
                None,
                EnumLimits {
                    max_plans: 1,
                    ..Default::default()
                },
            )
            .expect("feasible");
        assert!(report.truncated);
        assert!(!report.cost_minimal, "a cut space proves nothing");
        assert!(!report.sound());
    }

    /// An injected regression: a rule claiming to mint fresh join
    /// predicates forever. The termination proof must fail with a
    /// witness naming it.
    struct Runaway;
    impl<'e> TransformRule<OodbModel<'e>> for Runaway {
        fn name(&self) -> &'static str {
            "runaway-join-inflation"
        }
        fn apply(
            &self,
            _m: &OodbModel<'e>,
            _memo: &Memo<OodbModel<'e>>,
            _e: &Expr<OodbModel<'e>>,
        ) -> Vec<Rewrite<oodb_algebra::LogicalOp>> {
            vec![]
        }
        fn signature(&self) -> RuleSignature {
            RuleSignature {
                consumes: &["Join"],
                produces: &["Join"],
                generative: true,
            }
        }
    }

    #[test]
    fn injected_generative_rule_fails_with_rendered_witness() {
        let (env, _, _) = query2();
        let config = OptimizerConfig::all_rules();
        let mut rules = rule_set(&config);
        rules.transforms.push(Box::new(Runaway));
        let opt = OpenOodb::with_rule_set(&env, CostParams::default(), config, rules);
        let w = opt
            .prove_rules_terminate()
            .expect_err("generative cycle must be caught");
        let rendered = w.to_string();
        assert!(
            rendered.contains("runaway-join-inflation") && rendered.contains("Join"),
            "witness names the rule and the connecting shape: {rendered}"
        );
        assert_eq!(w.rules.first(), w.rules.last(), "witness closes the loop");
    }

    /// A rule that declares nothing about itself is rejected outright.
    struct Undeclared;
    impl<'e> TransformRule<OodbModel<'e>> for Undeclared {
        fn name(&self) -> &'static str {
            "undeclared"
        }
        fn apply(
            &self,
            _m: &OodbModel<'e>,
            _memo: &Memo<OodbModel<'e>>,
            _e: &Expr<OodbModel<'e>>,
        ) -> Vec<Rewrite<oodb_algebra::LogicalOp>> {
            vec![]
        }
    }

    #[test]
    fn unsigned_rule_fails_the_proof() {
        let (env, _, _) = query2();
        let config = OptimizerConfig::all_rules();
        let mut rules = rule_set(&config);
        rules.transforms.push(Box::new(Undeclared));
        let opt = OpenOodb::with_rule_set(&env, CostParams::default(), config, rules);
        let w = opt.prove_rules_terminate().expect_err("unsigned rejected");
        assert_eq!(w.rules, vec!["undeclared"]);
        assert!(w.to_string().contains("no signature"), "{w}");
    }

    #[test]
    fn confluence_on_select_mat_get_critical_pair() {
        let (env, q, vars) = query2();
        let report = check_confluence(
            &env,
            CostParams::default(),
            &OptimizerConfig::all_rules(),
            &q,
            vars,
            12,
        );
        assert_eq!(report.runs.len(), 12);
        assert!(report.confluent(), "{:?}", report.runs);
    }

    #[test]
    fn confluence_on_select_over_join_critical_pair() {
        // Select over Join: SelectJoinPush, SelectIntoJoin, JoinCommute
        // and SelectSplit all overlap here.
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (people, p) = qb.get(m.ids.person_extent, "p");
        let jp = qb.ref_eq(c, m.ids.city_mayor, p);
        let joined = qb.join(cities, people, jp);
        let sel = qb.eq_const(p, m.ids.person_name, Value::str("Joe"));
        let q = qb.select(joined, sel);
        let vars = VarSet::single(c);
        let env = qb.into_env();
        let report = check_confluence(
            &env,
            CostParams::default(),
            &OptimizerConfig::all_rules(),
            &q,
            vars,
            12,
        );
        assert!(report.confluent(), "{:?}", report.runs);
    }
}
