//! The Open OODB optimizer model: property derivation, selectivity, and
//! the helpers shared by rules.

use crate::config::OptimizerConfig;
use crate::cost::{Cost, CostParams};
use oodb_algebra::{
    CmpOp, LogicalOp, LogicalProps, Operand, PhysProps, PhysicalOp, PredId, QueryEnv, VarId,
    VarOrigin, VarSet,
};
use oodb_object::{CollectionId, FieldId};
use volcano::OptModel;

/// The model handed to the Volcano framework: query environment + cost
/// parameters + configuration.
pub struct OodbModel<'e> {
    /// The query's shared context.
    pub env: &'e QueryEnv,
    /// Device/CPU constants.
    pub params: CostParams,
    /// Optimizer configuration (disabled rules, assembly window).
    pub config: OptimizerConfig,
    /// Observed-selectivity overrides from the execution feedback loop.
    /// `None` (the default) keeps costing catalog-only with zero
    /// overhead — no predicate keys are ever rendered.
    overlay: Option<std::sync::Arc<oodb_algebra::StatsOverlay>>,
}

impl<'e> OodbModel<'e> {
    /// Creates a model with the given configuration.
    pub fn new(env: &'e QueryEnv, params: CostParams, config: OptimizerConfig) -> Self {
        OodbModel {
            env,
            params,
            config,
            overlay: None,
        }
    }

    /// Attaches an observed-selectivity overlay: predicates whose
    /// canonical key ([`oodb_algebra::overlay::pred_key`]) carries an
    /// override are estimated from the observed fraction instead of
    /// catalog statistics. The catalog itself is never touched.
    pub fn with_overlay(mut self, overlay: std::sync::Arc<oodb_algebra::StatsOverlay>) -> Self {
        self.overlay = if overlay.is_empty() {
            None
        } else {
            Some(overlay)
        };
        self
    }

    /// The overlay override for a predicate, if one is attached and
    /// matches. Key rendering is only paid when an overlay is present.
    fn overlay_sel(&self, pred: PredId) -> Option<f64> {
        let ov = self.overlay.as_ref()?;
        ov.get(&oodb_algebra::overlay::pred_key(
            self.env,
            self.env.preds.pred(pred),
        ))
    }

    /// The attached overlay, if any (for EXPLAIN rendering).
    pub fn overlay(&self) -> Option<&oodb_algebra::StatsOverlay> {
        self.overlay.as_deref()
    }

    // ----- variable helpers -------------------------------------------------

    /// Drops reference-valued variables (Unnest outputs): their value
    /// travels inside tuples, so they never participate in the
    /// presence-in-memory property.
    pub fn objify(&self, vars: VarSet) -> VarSet {
        VarSet::from_iter(vars.iter().filter(|&v| !self.env.scopes.var(v).is_ref()))
    }

    /// Variables whose object state a predicate reads, as a set.
    pub fn pred_mem_vars(&self, pred: PredId) -> VarSet {
        self.objify(VarSet::from_iter(self.env.preds.mem_vars(pred)))
    }

    /// All variables a predicate mentions, as a set.
    pub fn pred_vars(&self, pred: PredId) -> VarSet {
        VarSet::from_iter(self.env.preds.vars_used(pred))
    }

    /// Variables whose object state a projection list reads.
    pub fn items_mem_vars(&self, items: &[Operand]) -> VarSet {
        self.objify(VarSet::from_iter(items.iter().filter_map(Operand::mem_var)))
    }

    /// The collection that bounds the population a variable ranges over
    /// (delegates to [`QueryEnv::var_domain`]). `None` for components whose
    /// population is unknown to the catalog (the paper's `Plant`).
    pub fn var_domain(&self, v: VarId) -> Option<CollectionId> {
        self.env.var_domain(v)
    }

    /// Cardinality of a variable's domain, if known. "Cardinality
    /// information is kept only with extents and set instances" — so a
    /// `Plant` component yields `None` and assembly cannot bound its
    /// faults.
    pub fn var_domain_card(&self, v: VarId) -> Option<f64> {
        self.var_domain(v)
            .map(|c| self.env.catalog.collection(c).cardinality as f64)
    }

    /// Average object size for a variable, from its domain collection
    /// (fallback 256 bytes when unknown).
    pub fn var_obj_bytes(&self, v: VarId) -> f64 {
        self.var_domain(v)
            .map(|c| self.env.catalog.collection(c).obj_bytes as f64)
            .unwrap_or(256.0)
    }

    /// Reconstructs the single-valued reference path from a variable's
    /// base `Get` to `v` itself: returns `(base collection, base var,
    /// link fields)`. `None` when the chain passes through an `Unnest`
    /// (set-valued paths are not covered by our path indexes).
    pub fn index_path_of(&self, v: VarId) -> Option<(CollectionId, VarId, Vec<FieldId>)> {
        let mut links = Vec::new();
        let mut cur = v;
        loop {
            match self.env.scopes.var(cur).origin {
                VarOrigin::Get(coll) => {
                    links.reverse();
                    return Some((coll, cur, links));
                }
                VarOrigin::Mat {
                    src,
                    field: Some(f),
                } => {
                    links.push(f);
                    cur = src;
                }
                VarOrigin::Mat { field: None, .. } | VarOrigin::Unnest { .. } => return None,
            }
        }
    }

    /// The set of variables on `v`'s materialization chain, including the
    /// base. Used to decide whether a collapse-to-index-scan may discard
    /// the rest of the scope.
    pub fn chain_vars(&self, v: VarId) -> VarSet {
        let mut set = VarSet::single(v);
        let mut cur = v;
        while let VarOrigin::Mat { src, .. } | VarOrigin::Unnest { src, .. } =
            self.env.scopes.var(cur).origin
        {
            set = set.insert(src);
            cur = src;
        }
        set
    }

    /// Catalog index lookup filtered by the configuration's ignored set —
    /// all index-dependent reasoning (collapse rule, ordered scans, and
    /// index-derived statistics) must go through here so dynamic-plan
    /// compilation can hide indexes uniformly.
    pub fn usable_index(
        &self,
        coll: CollectionId,
        path: &[FieldId],
        key: FieldId,
    ) -> Option<(oodb_object::IndexId, &oodb_object::IndexDef)> {
        self.env
            .catalog
            .find_index(coll, path, key)
            .filter(|(_, d)| !self.config.ignored_indexes.contains(&d.name))
    }

    // ----- selectivity ------------------------------------------------------

    /// Selectivity of one comparison term. Index statistics are consulted
    /// when an index covers the attribute's full path; otherwise the
    /// paper's naïve default applies: "selectivity of selection predicates
    /// is assumed to be 10%".
    fn term_selectivity(&self, term: &oodb_algebra::Term) -> f64 {
        // Identity (reference) equality inside a join predicate is handled
        // by join cardinality; standalone it behaves like a key lookup.
        if let Some((_, target)) = term.as_ref_eq() {
            return 1.0 / self.var_domain_card(target).unwrap_or(10.0).max(1.0);
        }
        let (attr_side, other) = match (&term.left, &term.right) {
            (Operand::Attr { var, field }, o) | (o, Operand::Attr { var, field }) => {
                ((*var, *field), o)
            }
            _ => return 0.1,
        };
        if !matches!(other, Operand::Const(_)) {
            return 0.1;
        }
        let path = self.index_path_of(attr_side.0);
        // Collected histograms (our statistics-refinement extension) take
        // precedence over index distinct counts.
        if let (Some((coll, _, links)), Operand::Const(v)) = (&path, other) {
            if let Some(h) = self.env.catalog.histogram(*coll, links, attr_side.1) {
                let eq = h.selectivity_eq(v);
                let le = h.fraction_le(v);
                return match term.op {
                    CmpOp::Eq => eq,
                    CmpOp::Ne => 1.0 - eq,
                    CmpOp::Le => le,
                    CmpOp::Lt => (le - eq).max(0.0),
                    CmpOp::Gt => 1.0 - le,
                    CmpOp::Ge => (1.0 - le + eq).min(1.0),
                }
                .clamp(1e-9, 1.0);
            }
        }
        let distinct = path.and_then(|(coll, _, links)| {
            self.usable_index(coll, &links, attr_side.1)
                .map(|(_, idx)| idx.distinct_keys as f64)
        });
        match (term.op, distinct) {
            (CmpOp::Eq, Some(d)) => 1.0 / d.max(1.0),
            (CmpOp::Eq, None) => 0.1,
            (CmpOp::Ne, Some(d)) => 1.0 - 1.0 / d.max(1.0),
            (CmpOp::Ne, None) => 0.9,
            // Range comparisons: one third, with or without statistics
            // (no histograms in the 1993 prototype).
            _ => 1.0 / 3.0,
        }
    }

    /// Selectivity of a conjunction (product of independent terms), unless
    /// the feedback overlay carries an observed fraction for the whole
    /// conjunction — observed beats modeled.
    pub fn selectivity(&self, pred: PredId) -> f64 {
        if let Some(s) = self.overlay_sel(pred) {
            return s;
        }
        self.env
            .preds
            .pred(pred)
            .terms
            .iter()
            .map(|t| self.term_selectivity(t))
            .product()
    }

    /// Output cardinality of a join: reference equi-joins produce one
    /// match per reference scaled by the fraction of the target domain
    /// present on the target side; value joins use a conservative
    /// 1/max-input estimate.
    pub fn join_card(&self, pred: PredId, l: &LogicalProps, r: &LogicalProps) -> f64 {
        // Feedback override: observed selectivity relative to the cross
        // product of the inputs.
        if let Some(s) = self.overlay_sel(pred) {
            return (l.card * r.card * s).max(1e-6);
        }
        let p = self.env.preds.pred(pred);
        let mut card = None;
        let mut extra = 1.0;
        for t in &p.terms {
            if card.is_none() {
                if let Some((_, target)) = t.as_ref_eq() {
                    let (t_side, ref_side) = if l.vars.contains(target) {
                        (l, r)
                    } else {
                        (r, l)
                    };
                    let domain = self.var_domain_card(target).unwrap_or(t_side.card);
                    card = Some(ref_side.card * (t_side.card / domain.max(1.0)));
                    continue;
                }
            }
            extra *= match card {
                None => {
                    // First term, value-based equi-join.
                    card = Some(l.card * r.card / l.card.max(r.card).max(1.0));
                    1.0
                }
                Some(_) => self.term_selectivity(t),
            };
        }
        (card.unwrap_or(l.card * r.card) * extra).max(1e-6)
    }

    /// Estimated matches for an index lookup with the given predicate.
    pub fn index_matches(&self, coll: CollectionId, distinct: u64) -> f64 {
        self.env.catalog.collection(coll).cardinality as f64 / distinct.max(1) as f64
    }

    /// Assembly fault estimate for materializing `v` from `input_card`
    /// source tuples: bounded by the domain cardinality when known,
    /// unbounded (one fault per source tuple) otherwise — the paper's
    /// 50,000-fault Plant anecdote.
    pub fn assembly_faults(&self, v: VarId, input_card: f64) -> f64 {
        match self.var_domain_card(v) {
            Some(domain) => input_card.min(domain),
            None => input_card,
        }
    }

    /// Assembly cost for one target.
    pub fn assembly_cost(&self, v: VarId, input_card: f64, window: u32) -> Cost {
        let faults = self.assembly_faults(v, input_card);
        Cost::new(
            self.params.assembly_io(faults, window),
            input_card * self.params.cpu_deref_s,
        )
    }
}

impl<'e> OodbModel<'e> {
    /// Single source of truth for physical-operator estimation: output
    /// logical properties plus the operator's local cost, given input
    /// properties. Implementation rules, plan annotation, and the greedy
    /// baseline all cost through here, so estimates cannot diverge.
    pub fn phys_estimate(&self, op: &PhysicalOp, inputs: &[LogicalProps]) -> (LogicalProps, Cost) {
        let p = &self.params;
        match op {
            PhysicalOp::FileScan { coll, var } => {
                let c = self.env.catalog.collection(*coll);
                let pages = p.pages(c.cardinality as f64, c.obj_bytes as f64);
                (
                    LogicalProps {
                        vars: VarSet::single(*var),
                        card: c.cardinality as f64,
                        bytes: c.obj_bytes as f64,
                    },
                    Cost::new(p.seq_scan(pages), c.cardinality as f64 * p.cpu_tuple_s),
                )
            }
            PhysicalOp::IndexScan { index, var, pred } => {
                let idx = self.env.catalog.index(*index);
                let c = self.env.catalog.collection(idx.collection);
                // An empty predicate means a full ordered index scan (the
                // sort-order extension); an equality uses distinct-key
                // statistics; range predicates use estimated selectivity
                // over a B-tree range sweep.
                let p_terms = self.env.preds.pred(*pred).terms.clone();
                let matches = match p_terms.first() {
                    None => c.cardinality as f64,
                    // An overlay override beats distinct-key statistics:
                    // the distinct-key path is exactly where a skewed key
                    // makes the uniform 1/d estimate fiction.
                    Some(t) if t.op == CmpOp::Eq => match self.overlay_sel(*pred) {
                        Some(s) => (c.cardinality as f64 * s).max(1.0),
                        None => self.index_matches(idx.collection, idx.distinct_keys),
                    },
                    Some(_) => (c.cardinality as f64 * self.selectivity(*pred)).max(1.0),
                };
                let coll_pages = p.pages(c.cardinality as f64, c.obj_bytes as f64);
                let io = p.index_lookup_io(c.cardinality as f64, matches)
                    + p.index_fetch_io(matches, coll_pages);
                (
                    LogicalProps {
                        vars: VarSet::single(*var),
                        card: matches,
                        bytes: c.obj_bytes as f64,
                    },
                    Cost::new(io, matches * p.cpu_tuple_s),
                )
            }
            PhysicalOp::Filter { pred } => {
                let i = inputs[0];
                (
                    LogicalProps {
                        card: (i.card * self.selectivity(*pred)).max(1e-6),
                        ..i
                    },
                    Cost::cpu(i.card * p.cpu_pred_s),
                )
            }
            PhysicalOp::HybridHashJoin { pred } => {
                let (l, r) = (inputs[0], inputs[1]);
                (
                    LogicalProps {
                        vars: l.vars.union(r.vars),
                        card: self.join_card(*pred, &l, &r),
                        bytes: l.bytes + r.bytes,
                    },
                    p.hash_join(l.card, l.bytes, r.card, r.bytes),
                )
            }
            PhysicalOp::PointerJoin { pred } => {
                let l = inputs[0];
                let target = self
                    .env
                    .preds
                    .pred(*pred)
                    .terms
                    .first()
                    .and_then(|t| t.as_ref_eq())
                    .map(|(_, t)| t)
                    .expect("pointer join needs a reference equality");
                let domain = self
                    .var_domain(target)
                    .expect("pointer join needs a domain");
                let dc = self.env.catalog.collection(domain);
                let target_props = LogicalProps {
                    vars: VarSet::single(target),
                    card: dc.cardinality as f64,
                    bytes: dc.obj_bytes as f64,
                };
                let refs = l.card;
                // Per-object fault charging, like assembly: the 1993 cost
                // model has no page-level dedup statistics, so a pointer
                // join earns the elevator discount but not a page cap.
                let distinct = refs.min(dc.cardinality as f64);
                (
                    LogicalProps {
                        vars: l.vars.insert(target),
                        card: self.join_card(*pred, &l, &target_props),
                        bytes: l.bytes + dc.obj_bytes as f64,
                    },
                    Cost::new(
                        distinct * p.rand_s * p.elevator_factor,
                        refs * p.cpu_deref_s,
                    ),
                )
            }
            PhysicalOp::Assembly { targets, window } => {
                let i = inputs[0];
                let mut cost = Cost::ZERO;
                let mut vars = i.vars;
                let mut bytes = i.bytes;
                for &v in targets {
                    cost = volcano::CostValue::add(cost, self.assembly_cost(v, i.card, *window));
                    vars = vars.insert(v);
                    bytes += self.var_obj_bytes(v);
                }
                (
                    LogicalProps {
                        vars,
                        card: i.card,
                        bytes,
                    },
                    cost,
                )
            }
            PhysicalOp::WarmAssembly { target } => {
                let i = inputs[0];
                let domain = self
                    .var_domain(*target)
                    .expect("warm assembly needs a known domain");
                let dc = self.env.catalog.collection(domain);
                let pages = p.pages(dc.cardinality as f64, dc.obj_bytes as f64);
                (
                    LogicalProps {
                        vars: i.vars.insert(*target),
                        card: i.card,
                        bytes: i.bytes + dc.obj_bytes as f64,
                    },
                    Cost::new(
                        p.seq_scan(pages),
                        i.card * p.cpu_deref_s + dc.cardinality as f64 * p.cpu_tuple_s,
                    ),
                )
            }
            PhysicalOp::AlgUnnest { out } => {
                let i = inputs[0];
                let fanout = match self.env.scopes.var(*out).origin {
                    VarOrigin::Unnest { field, .. } => self.env.catalog.fanout(field),
                    _ => 1.0,
                };
                let card = i.card * fanout;
                (
                    LogicalProps {
                        vars: i.vars.insert(*out),
                        card,
                        bytes: i.bytes + 8.0,
                    },
                    Cost::cpu(card * p.cpu_tuple_s),
                )
            }
            PhysicalOp::AlgProject { items } => {
                let i = inputs[0];
                (
                    LogicalProps {
                        vars: VarSet::from_iter(items.iter().filter_map(Operand::var)),
                        card: i.card,
                        bytes: 16.0 * items.len() as f64,
                    },
                    Cost::cpu(i.card * p.cpu_tuple_s),
                )
            }
            PhysicalOp::MergeJoin { pred } => {
                let (l, r) = (inputs[0], inputs[1]);
                (
                    LogicalProps {
                        vars: l.vars.union(r.vars),
                        card: self.join_card(*pred, &l, &r),
                        bytes: l.bytes + r.bytes,
                    },
                    // One synchronized pass over both (sorted) inputs.
                    Cost::cpu((l.card + r.card) * p.cpu_tuple_s),
                )
            }
            PhysicalOp::Sort { key } => {
                let i = inputs[0];
                let card = i.card.max(1.0);
                let _ = key;
                (i, Cost::cpu(card * card.log2().max(1.0) * p.cpu_tuple_s))
            }
            PhysicalOp::HashSetOp { kind } => {
                let (l, r) = (inputs[0], inputs[1]);
                let card = match kind {
                    oodb_algebra::SetOpKind::Union => l.card + r.card,
                    oodb_algebra::SetOpKind::Intersect => l.card.min(r.card) * 0.5,
                    oodb_algebra::SetOpKind::Difference => l.card * 0.5,
                };
                (
                    LogicalProps {
                        vars: l.vars,
                        card: card.max(1e-6),
                        bytes: l.bytes,
                    },
                    Cost::cpu((l.card + r.card) * p.cpu_hash_s),
                )
            }
        }
    }
}

impl<'e> OptModel for OodbModel<'e> {
    type LOp = LogicalOp;
    type POp = PhysicalOp;
    type LProps = LogicalProps;
    type PProps = PhysProps;
    type Cost = Cost;

    fn derive_props(&self, op: &LogicalOp, inputs: &[&LogicalProps]) -> LogicalProps {
        match op {
            LogicalOp::Get { coll, var } => {
                let c = self.env.catalog.collection(*coll);
                LogicalProps {
                    vars: VarSet::single(*var),
                    card: c.cardinality as f64,
                    bytes: c.obj_bytes as f64,
                }
            }
            LogicalOp::Select { pred } => LogicalProps {
                vars: inputs[0].vars,
                card: (inputs[0].card * self.selectivity(*pred)).max(1e-6),
                bytes: inputs[0].bytes,
            },
            LogicalOp::Project { items } => LogicalProps {
                vars: VarSet::from_iter(items.iter().filter_map(Operand::var)),
                card: inputs[0].card,
                bytes: 16.0 * items.len() as f64,
            },
            LogicalOp::Join { pred } => LogicalProps {
                vars: inputs[0].vars.union(inputs[1].vars),
                card: self.join_card(*pred, inputs[0], inputs[1]),
                bytes: inputs[0].bytes + inputs[1].bytes,
            },
            LogicalOp::Mat { out } => LogicalProps {
                vars: inputs[0].vars.insert(*out),
                card: inputs[0].card,
                bytes: inputs[0].bytes + self.var_obj_bytes(*out),
            },
            LogicalOp::Unnest { out } => {
                let fanout = match self.env.scopes.var(*out).origin {
                    VarOrigin::Unnest { field, .. } => self.env.catalog.fanout(field),
                    _ => 1.0,
                };
                LogicalProps {
                    vars: inputs[0].vars.insert(*out),
                    card: inputs[0].card * fanout,
                    bytes: inputs[0].bytes + 8.0,
                }
            }
            LogicalOp::SetOp { kind } => {
                let (l, r) = (inputs[0], inputs[1]);
                let card = match kind {
                    oodb_algebra::SetOpKind::Union => l.card + r.card,
                    oodb_algebra::SetOpKind::Intersect => l.card.min(r.card) * 0.5,
                    oodb_algebra::SetOpKind::Difference => l.card * 0.5,
                };
                LogicalProps {
                    vars: l.vars,
                    card: card.max(1e-6),
                    bytes: l.bytes,
                }
            }
        }
    }

    fn satisfies(&self, required: &PhysProps, delivered: &PhysProps) -> bool {
        required.satisfied_by(*delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizerConfig;
    use oodb_algebra::QueryBuilder;
    use oodb_object::paper::paper_model;
    use oodb_object::Value;

    fn fixture() -> (oodb_object::paper::PaperModel, QueryEnv, VarId, VarId) {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (_, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
        (m, qb.into_env(), c, cm)
    }

    #[test]
    fn index_path_reconstruction() {
        let (m, env, c, cm) = fixture();
        let model = OodbModel::new(&env, CostParams::default(), OptimizerConfig::default());
        let (coll, base, links) = model.index_path_of(cm).unwrap();
        assert_eq!(coll, m.ids.cities);
        assert_eq!(base, c);
        assert_eq!(links, vec![m.ids.city_mayor]);
        // Base var: empty path.
        let (_, _, links_c) = model.index_path_of(c).unwrap();
        assert!(links_c.is_empty());
    }

    #[test]
    fn indexed_selectivity_estimates_two_joes() {
        let (m, env, _, cm) = fixture();
        let model = OodbModel::new(&env, CostParams::default(), OptimizerConfig::default());
        let pred = env.preds.cmp(
            Operand::Attr {
                var: cm,
                field: m.ids.person_name,
            },
            CmpOp::Eq,
            Operand::Const(Value::str("Joe")),
        );
        // 10,000 cities / 5,000 distinct mayor names = 2.
        let sel = model.selectivity(pred);
        assert!((sel * 10_000.0 - 2.0).abs() < 1e-9, "sel={sel}");
    }

    #[test]
    fn unindexed_selectivity_defaults_to_ten_percent() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (dept, d) = qb.get(m.ids.department_extent, "d");
        let (_, dp) = qb.mat(dept, d, m.ids.dept_plant, "dp");
        let pred = qb.eq_const(dp, m.ids.plant_location, Value::str("Dallas"));
        let env = qb.into_env();
        let model = OodbModel::new(&env, CostParams::default(), OptimizerConfig::default());
        assert!((model.selectivity(pred) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn plant_has_unbounded_faults_but_dept_is_bounded() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (emp, e) = qb.get(m.ids.employees, "e");
        let (p1, d) = qb.mat(emp, e, m.ids.emp_dept, "d");
        let (_, dp) = qb.mat(p1, d, m.ids.dept_plant, "dp");
        let env = qb.into_env();
        let model = OodbModel::new(&env, CostParams::default(), OptimizerConfig::default());
        // Departments: bounded by the 1,000-object extent.
        assert_eq!(model.assembly_faults(d, 50_000.0), 1_000.0);
        // Plants: no extent → one fault per source tuple (the paper's
        // 50,000-page-fault estimate).
        assert_eq!(model.assembly_faults(dp, 50_000.0), 50_000.0);
    }

    #[test]
    fn mat_derives_scope_and_preserves_card() {
        let (_, env, c, cm) = fixture();
        let model = OodbModel::new(&env, CostParams::default(), OptimizerConfig::default());
        let cities_coll = match env.scopes.var(c).origin {
            VarOrigin::Get(coll) => coll,
            _ => unreachable!(),
        };
        let get_props = model.derive_props(
            &LogicalOp::Get {
                coll: cities_coll,
                var: c,
            },
            &[],
        );
        assert_eq!(get_props.card, 10_000.0);
        let mat_props = model.derive_props(&LogicalOp::Mat { out: cm }, &[&get_props]);
        assert_eq!(mat_props.card, 10_000.0);
        assert!(mat_props.vars.contains(c) && mat_props.vars.contains(cm));
        assert!(mat_props.bytes > get_props.bytes);
    }

    #[test]
    fn ref_join_card_matches_ref_side() {
        // Mat→Join against the full extent: one match per reference.
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (emp, e) = qb.get(m.ids.employees, "e");
        let (_, d) = qb.mat(emp, e, m.ids.emp_dept, "d");
        let pred = qb.ref_eq(e, m.ids.emp_dept, d);
        let env = qb.into_env();
        let model = OodbModel::new(&env, CostParams::default(), OptimizerConfig::default());
        let l = LogicalProps {
            vars: VarSet::single(e),
            card: 50_000.0,
            bytes: 250.0,
        };
        let r = LogicalProps {
            vars: VarSet::single(d),
            card: 1_000.0,
            bytes: 400.0,
        };
        assert!((model.join_card(pred, &l, &r) - 50_000.0).abs() < 1e-6);
        // Filtered target side (1% of departments) scales matches down.
        let r_filtered = LogicalProps { card: 10.0, ..r };
        assert!((model.join_card(pred, &l, &r_filtered) - 500.0).abs() < 1e-6);
    }

    #[test]
    fn unnest_multiplies_by_fanout() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (tasks, t) = qb.get(m.ids.tasks, "t");
        let (_, mm) = qb.unnest(tasks, t, m.ids.task_team_members, "m");
        let env = qb.into_env();
        let model = OodbModel::new(&env, CostParams::default(), OptimizerConfig::default());
        let in_props = LogicalProps {
            vars: VarSet::single(t),
            card: 2_000.0,
            bytes: 120.0,
        };
        let out = model.derive_props(&LogicalOp::Unnest { out: mm }, &[&in_props]);
        assert_eq!(out.card, 10_000.0, "2,000 tasks × 5 members");
    }
}
