//! Dynamic plan selection — the ObjectStore capability the paper compares
//! against (§2): "the optimizer generates multiple execution strategies at
//! compile time and makes a final plan selection at run-time based on the
//! availability of indices. This dynamic capability permits users to
//! modify some of the physical characteristics of the objects being
//! queried (e.g., adding and deleting indices) without having to recompile
//! their applications."
//!
//! Unlike ObjectStore's greedy compile, each alternative here is produced
//! by the *cost-based* optimizer under a different assumed index
//! availability, so run-time selection inherits cost-based quality.

use crate::config::OptimizerConfig;
use crate::cost::{Cost, CostParams};
use crate::optimizer::OpenOodb;
use oodb_algebra::{LogicalPlan, PhysicalOp, PhysicalPlan, QueryEnv, VarSet};
use std::collections::HashSet;

/// One precompiled alternative.
#[derive(Clone, Debug)]
pub struct DynamicAlternative {
    /// Index names the plan depends on (must all exist at run time).
    pub requires: Vec<String>,
    /// The plan.
    pub plan: PhysicalPlan,
    /// Its estimated cost under the compile-time catalog.
    pub cost: Cost,
}

/// A compiled query with one plan per useful index configuration.
#[derive(Clone, Debug)]
pub struct DynamicPlan {
    /// Alternatives, deduplicated by required-index set, cheapest kept.
    pub alternatives: Vec<DynamicAlternative>,
}

/// Upper bound on catalog indexes considered (2^n subsets are compiled).
pub const MAX_DYNAMIC_INDEXES: usize = 10;

/// Index names an already-built plan actually uses.
pub fn indexes_used(env: &QueryEnv, plan: &PhysicalPlan) -> Vec<String> {
    let mut names: Vec<String> = plan
        .iter_ops()
        .into_iter()
        .filter_map(|op| match op {
            PhysicalOp::IndexScan { index, .. } => Some(env.catalog.index(*index).name.clone()),
            _ => None,
        })
        .collect();
    names.sort();
    names.dedup();
    names
}

/// Compiles a query once per subset of the catalog's indexes, keeping the
/// cheapest plan per distinct *used*-index set.
pub fn compile_dynamic(
    env: &QueryEnv,
    params: CostParams,
    config: &OptimizerConfig,
    plan: &LogicalPlan,
    result_vars: VarSet,
) -> DynamicPlan {
    let all_names: Vec<String> = env.catalog.indexes().map(|(_, d)| d.name.clone()).collect();
    assert!(
        all_names.len() <= MAX_DYNAMIC_INDEXES,
        "dynamic compilation enumerates 2^n index subsets; {} indexes exceed \
         the {MAX_DYNAMIC_INDEXES}-index bound",
        all_names.len()
    );

    let mut best: Vec<DynamicAlternative> = Vec::new();
    for mask in 0..(1u32 << all_names.len()) {
        let ignored: Vec<String> = all_names
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) == 0)
            .map(|(_, n)| n.clone())
            .collect();
        let cfg = OptimizerConfig {
            ignored_indexes: ignored,
            ..config.clone()
        };
        let Some(out) = OpenOodb::new(env, params, cfg).optimize(plan, result_vars) else {
            continue;
        };
        let requires = indexes_used(env, &out.plan);
        match best.iter_mut().find(|a| a.requires == requires) {
            Some(existing) => {
                if out.cost.total() < existing.cost.total() {
                    existing.plan = out.plan;
                    existing.cost = out.cost;
                }
            }
            None => best.push(DynamicAlternative {
                requires,
                plan: out.plan,
                cost: out.cost,
            }),
        }
    }
    // Cheapest-first makes selection a linear scan for the first feasible.
    best.sort_by(|a, b| a.cost.total().total_cmp(&b.cost.total()));
    DynamicPlan { alternatives: best }
}

impl DynamicPlan {
    /// Run-time selection: the cheapest alternative whose required indexes
    /// all exist. The index-free alternative guarantees a match.
    pub fn select(&self, available: &HashSet<String>) -> &DynamicAlternative {
        self.alternatives
            .iter()
            .find(|a| a.requires.iter().all(|n| available.contains(n)))
            .expect("an index-free alternative always exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_object::paper::paper_model;
    use oodb_object::Value;

    /// The paper's Query 4 compiled dynamically: selection adapts to
    /// whatever indexes exist at "run time", without recompilation.
    #[test]
    fn query4_selects_by_availability() {
        let m = paper_model();
        let mut qb = oodb_algebra::QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (tasks, t) = qb.get(m.ids.tasks, "t");
        let (p, mm) = qb.unnest(tasks, t, m.ids.task_team_members, "m");
        let (p, e) = qb.mat_deref(p, mm, "e");
        let pred = qb.conj(vec![
            qb.term(
                oodb_algebra::Operand::Attr {
                    var: e,
                    field: m.ids.person_name,
                },
                oodb_algebra::CmpOp::Eq,
                oodb_algebra::Operand::Const(Value::str("Fred")),
            ),
            qb.term(
                oodb_algebra::Operand::Attr {
                    var: t,
                    field: m.ids.task_time,
                },
                oodb_algebra::CmpOp::Eq,
                oodb_algebra::Operand::Const(Value::Int(100)),
            ),
        ]);
        let plan = qb.select(p, pred);
        let env = qb.into_env();

        let dynamic = compile_dynamic(
            &env,
            CostParams::default(),
            &OptimizerConfig::all_rules(),
            &plan,
            oodb_algebra::VarSet::single(t),
        );
        assert!(
            dynamic.alternatives.len() >= 2,
            "at least the index-free and time-index plans: {:?}",
            dynamic
                .alternatives
                .iter()
                .map(|a| &a.requires)
                .collect::<Vec<_>>()
        );
        // There must be an alternative requiring nothing.
        assert!(dynamic.alternatives.iter().any(|a| a.requires.is_empty()));

        let avail =
            |names: &[&str]| -> HashSet<String> { names.iter().map(|s| s.to_string()).collect() };

        // All indexes present: the winner uses the time index.
        let best = dynamic.select(&avail(&[
            "Tasks_time",
            "Employees_name",
            "Cities_mayor_name",
        ]));
        assert_eq!(best.requires, vec!["Tasks_time".to_string()]);

        // Time index dropped at run time: a different plan applies without
        // recompiling.
        let fallback = dynamic.select(&avail(&["Employees_name"]));
        assert!(!fallback.requires.contains(&"Tasks_time".to_string()));
        assert!(fallback.cost.total() >= best.cost.total());

        // Nothing available: the naive plan still runs.
        let naive = dynamic.select(&avail(&[]));
        assert!(naive.requires.is_empty());
        assert!(naive.cost.total() >= fallback.cost.total());
    }

    /// Hiding an index must route the optimizer around it even though the
    /// catalog still contains the entry.
    #[test]
    fn ignored_indexes_hide_statistics_and_plans() {
        let m = paper_model();
        let mut qb = oodb_algebra::QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (p, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
        let pred = qb.eq_const(cm, m.ids.person_name, Value::str("Joe"));
        let plan = qb.select(p, pred);
        let env = qb.into_env();

        let cfg = OptimizerConfig {
            ignored_indexes: vec!["Cities_mayor_name".to_string()],
            ..OptimizerConfig::all_rules()
        };
        let out = OpenOodb::new(&env, CostParams::default(), cfg)
            .optimize(&plan, oodb_algebra::VarSet::single(c))
            .unwrap();
        assert!(
            !out.plan
                .contains_op(&|op| matches!(op, PhysicalOp::IndexScan { .. })),
            "hidden index must not appear in the plan"
        );
    }
}
