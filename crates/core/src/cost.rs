//! The cost model: CPU + I/O seconds on a 1993 workstation.
//!
//! "Currently, our cost model is very traditional. We consider both CPU
//! and I/O costs, and 'charge' less for sequential than for random I/O.
//! Assembly's I/O cost captures the fact that seek distances are minimized
//! by charging less than for a random I/O operation."
//!
//! Cost is "encapsulated in an abstract data type" — here a two-component
//! struct ([`Cost`]) — "and tuning an algorithm's cost formula is a very
//! localized change": all device and CPU constants live in [`CostParams`].
//! The defaults are calibrated against the paper's DECstation 5000/125
//! numbers (see EXPERIMENTS.md for the calibration record).

use volcano::CostValue;

/// A cost: I/O seconds + CPU seconds. Plans compare by the sum.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cost {
    /// Seconds spent on disk I/O.
    pub io_s: f64,
    /// Seconds spent on CPU work.
    pub cpu_s: f64,
}

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost {
        io_s: 0.0,
        cpu_s: 0.0,
    };

    /// Pure-I/O cost.
    pub fn io(s: f64) -> Cost {
        Cost {
            io_s: s,
            cpu_s: 0.0,
        }
    }

    /// Pure-CPU cost.
    pub fn cpu(s: f64) -> Cost {
        Cost {
            io_s: 0.0,
            cpu_s: s,
        }
    }

    /// Both components.
    pub fn new(io_s: f64, cpu_s: f64) -> Cost {
        Cost { io_s, cpu_s }
    }

    /// Total seconds (inherent mirror of [`CostValue::total`] so callers
    /// don't need the trait in scope).
    pub fn total(self) -> f64 {
        self.io_s + self.cpu_s
    }
}

impl CostValue for Cost {
    fn zero() -> Self {
        Cost::ZERO
    }
    fn add(self, other: Self) -> Self {
        Cost {
            io_s: self.io_s + other.io_s,
            cpu_s: self.cpu_s + other.cpu_s,
        }
    }
    fn total(self) -> f64 {
        self.io_s + self.cpu_s
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        CostValue::add(self, rhs)
    }
}

/// Device and CPU constants (DECstation 5000/125-era defaults: 25 MHz
/// R3000, 32 MB memory, 4 KB pages, ~20 ms random disk access).
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Page size in bytes.
    pub page_bytes: u32,
    /// Sequential page transfer, seconds.
    pub seq_s: f64,
    /// Random page access, seconds.
    pub rand_s: f64,
    /// Fraction of `rand_s` paid per fault by a large assembly window
    /// (the elevator discount).
    pub elevator_factor: f64,
    /// Main memory available to hash tables, bytes.
    pub mem_bytes: u64,
    /// CPU per tuple produced/scanned/projected, seconds.
    pub cpu_tuple_s: f64,
    /// CPU per predicate evaluation, seconds.
    pub cpu_pred_s: f64,
    /// CPU per hash-table operation (build insert or probe), seconds.
    pub cpu_hash_s: f64,
    /// CPU per reference dereference (assembly/pointer chasing), seconds.
    pub cpu_deref_s: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            page_bytes: 4096,
            seq_s: 0.002,
            rand_s: 0.020,
            elevator_factor: 0.55,
            mem_bytes: 32 * 1024 * 1024,
            cpu_tuple_s: 0.000_05,
            cpu_pred_s: 0.000_1,
            cpu_hash_s: 0.002,
            cpu_deref_s: 0.000_4,
        }
    }
}

impl CostParams {
    /// Pages occupied by `card` tuples of `bytes` bytes each, densely
    /// packed.
    pub fn pages(&self, card: f64, bytes: f64) -> f64 {
        let per_page = (self.page_bytes as f64 / bytes.max(1.0)).floor().max(1.0);
        (card / per_page).ceil().max(0.0)
    }

    /// Sequential scan of `pages` pages (first access pays a seek).
    pub fn seq_scan(&self, pages: f64) -> f64 {
        if pages <= 0.0 {
            0.0
        } else {
            self.rand_s + (pages - 1.0).max(0.0) * self.seq_s
        }
    }

    /// Per-fault multiplier for an assembly window of `w` open references:
    /// `w == 1` degenerates to full random cost ("the lookup component of
    /// an unclustered index scan"); large windows approach the elevator
    /// discount.
    pub fn window_factor(&self, w: u32) -> f64 {
        self.elevator_factor + (1.0 - self.elevator_factor) / w.max(1) as f64
    }

    /// I/O for assembling `faults` objects with window `w`.
    pub fn assembly_io(&self, faults: f64, w: u32) -> f64 {
        faults * self.rand_s * self.window_factor(w)
    }

    /// I/O for fetching `matches` objects found by an unclustered index:
    /// one random access per match (the paper's window-1 assembly is
    /// "similar to the lookup component of an unclustered index scan"),
    /// never worse than scanning the whole collection region.
    pub fn index_fetch_io(&self, matches: f64, coll_pages: f64) -> f64 {
        (matches * self.rand_s).min(self.seq_scan(coll_pages))
    }

    /// B-tree lookup I/O: internal height + leaf pages for `matches`
    /// entries at ~256 entries per page.
    pub fn index_lookup_io(&self, entries: f64, matches: f64) -> f64 {
        let mut height = 1.0;
        let mut span = 256.0;
        while span < entries.max(1.0) {
            span *= 256.0;
            height += 1.0;
        }
        let leaves = (matches / 256.0).ceil().max(1.0);
        (height + leaves) * self.rand_s
    }

    /// Hybrid-hash-join cost: hash table on the *build* side; spills to
    /// partition files when the table exceeds memory ("very efficient
    /// executions of hybrid hash join using only in-memory hash tables and
    /// no overflow files" — when the build side is small).
    pub fn hash_join(
        &self,
        build_card: f64,
        build_bytes: f64,
        probe_card: f64,
        probe_bytes: f64,
    ) -> Cost {
        let cpu = (build_card + probe_card) * self.cpu_hash_s;
        let table_bytes = build_card * build_bytes;
        let io = if table_bytes <= self.mem_bytes as f64 {
            0.0
        } else {
            // Write + re-read both sides' overflow partitions.
            let frac = 1.0 - self.mem_bytes as f64 / table_bytes;
            2.0 * frac
                * (self.pages(build_card, build_bytes) + self.pages(probe_card, probe_bytes))
                * self.seq_s
        };
        Cost::new(io, cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_accumulates_componentwise() {
        let c = Cost::io(1.0) + Cost::cpu(0.5) + Cost::new(0.25, 0.25);
        assert_eq!(c, Cost::new(1.25, 0.75));
        assert_eq!(c.total(), 2.0);
    }

    #[test]
    fn sequential_cheaper_than_random() {
        let p = CostParams::default();
        let seq = p.seq_scan(1000.0);
        let rand = 1000.0 * p.rand_s;
        assert!(seq < rand / 5.0);
    }

    #[test]
    fn window_factor_interpolates() {
        let p = CostParams::default();
        assert!((p.window_factor(1) - 1.0).abs() < 1e-12);
        assert!(p.window_factor(2) < 1.0);
        assert!((p.window_factor(1 << 20) - p.elevator_factor).abs() < 1e-3);
        // Monotone in w.
        assert!(p.window_factor(4) > p.window_factor(16));
    }

    #[test]
    fn assembly_window_reproduces_table2_ratio() {
        // Table 2: w/o window ≈ 1.7× the w/o-commutativity plan, driven by
        // assembly faults at full vs elevator rate.
        let p = CostParams::default();
        let with_window = p.assembly_io(56_000.0, 8192);
        let without = p.assembly_io(56_000.0, 1);
        assert!((without / with_window - 1.0 / p.window_factor(8192)).abs() < 1e-9);
        assert!(without / with_window > 1.5);
    }

    #[test]
    fn index_fetch_capped_by_collection_size() {
        let p = CostParams::default();
        // 10_000 matches in a 500-page collection cannot fault more than
        // 500 times.
        assert!(p.index_fetch_io(10_000.0, 500.0) <= 500.0 * p.rand_s);
    }

    #[test]
    fn hash_join_spills_beyond_memory() {
        let p = CostParams::default();
        let fits = p.hash_join(1_000.0, 250.0, 50_000.0, 250.0);
        assert_eq!(fits.io_s, 0.0, "1000×250B fits in 32MB");
        let spills = p.hash_join(1_000_000.0, 250.0, 50_000.0, 250.0);
        assert!(spills.io_s > 0.0, "250MB build must spill");
    }

    #[test]
    fn pages_math() {
        let p = CostParams::default();
        // 4096/200 = 20 per page → 10_000 objects = 500 pages.
        assert_eq!(p.pages(10_000.0, 200.0), 500.0);
        // Objects larger than a page: one page each.
        assert_eq!(p.pages(10.0, 8000.0), 10.0);
    }
}
