//! Logical transformation rules.
//!
//! "Since our logical algebra is based on the relational algebra, our
//! transformation rules include known relational transformations plus some
//! new ones pertaining to the materialize operator. These transformations
//! move materialize operators above and beneath ('through') selection,
//! join, and set operators, provided none of the other operators depends on
//! a scope defined by materialize."
//!
//! Multi-level patterns (anything that needs to see below the immediate
//! operator) match by enumerating the child group's expressions in the
//! memo; the engine re-fires rules when child groups grow, so exploration
//! is exhaustive.

//! ## Rule signatures
//!
//! Every rule declares a [`RuleSignature`] — the operator shapes it
//! consumes and produces — feeding the rule-graph termination analysis
//! ([`volcano::rulegraph`]). All twelve rules are *non-generative*: the
//! predicates they intern (split conjuncts, merged join predicates, the
//! Mat→Join reference equality) are drawn from the finite closure of the
//! query's own terms — subsets and unions of the original conjuncts, or
//! one canonical equality per materialized variable — so the memo's
//! duplicate elimination bounds every rewrite cycle they can form.

use crate::model::OodbModel;
use oodb_algebra::{LogicalOp, Operand, Pred, VarOrigin};
use volcano::{Expr, Memo, Rewrite, RuleSignature, TransformRule};

type M<'e> = OodbModel<'e>;
type Rw = Rewrite<LogicalOp>;

fn op(o: LogicalOp, children: Vec<Rw>) -> Rw {
    Rewrite::Op(o, children)
}
fn grp(g: volcano::GroupId) -> Rw {
    Rewrite::Group(g)
}

/// `Select[t1 ∧ … ∧ tn](X)` → `Select[ti](Select[rest](X))` for each `i`.
/// Exposes individual conjuncts to pushdown and index collapsing (needed
/// for Query 4, where `t.time == 100` must reach the Tasks index while
/// `e.name == "Fred"` stays above the materialize).
pub struct SelectSplit;

impl<'e> TransformRule<M<'e>> for SelectSplit {
    fn name(&self) -> &'static str {
        crate::config::rule_names::SELECT_SPLIT
    }
    fn signature(&self) -> RuleSignature {
        // Split predicates are subsets of the original conjuncts.
        RuleSignature {
            consumes: &["Select"],
            produces: &["Select"],
            generative: false,
        }
    }
    fn apply(&self, model: &M<'e>, _memo: &Memo<M<'e>>, expr: &Expr<M<'e>>) -> Vec<Rw> {
        let LogicalOp::Select { pred } = &expr.op else {
            return vec![];
        };
        let p = model.env.preds.pred(*pred);
        if p.terms.len() < 2 {
            return vec![];
        }
        let mut out = Vec::new();
        for i in 0..p.terms.len() {
            let rest: Vec<_> = p
                .terms
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, t)| t.clone())
                .collect();
            let one = model.env.preds.intern(Pred::term(p.terms[i].clone()));
            let rest = model.env.preds.intern(Pred { terms: rest });
            out.push(op(
                LogicalOp::Select { pred: one },
                vec![op(
                    LogicalOp::Select { pred: rest },
                    vec![grp(expr.children[0])],
                )],
            ));
        }
        out
    }
}

/// Commutes `Select` with `Mat` in both directions: push down when the
/// predicate does not use the materialized component; pull up always.
pub struct SelectMatSwap;

impl<'e> TransformRule<M<'e>> for SelectMatSwap {
    fn name(&self) -> &'static str {
        crate::config::rule_names::SELECT_MAT_SWAP
    }
    fn signature(&self) -> RuleSignature {
        RuleSignature {
            consumes: &["Select", "Mat"],
            produces: &["Select", "Mat"],
            generative: false,
        }
    }
    fn apply(&self, model: &M<'e>, memo: &Memo<M<'e>>, expr: &Expr<M<'e>>) -> Vec<Rw> {
        let mut out = Vec::new();
        match &expr.op {
            LogicalOp::Select { pred } => {
                let used = model.pred_vars(*pred);
                for ce in memo.group_exprs(expr.children[0]) {
                    let child = memo.expr(ce);
                    if let LogicalOp::Mat { out: mat_out } = child.op {
                        if !used.contains(mat_out) {
                            out.push(op(
                                LogicalOp::Mat { out: mat_out },
                                vec![op(
                                    LogicalOp::Select { pred: *pred },
                                    vec![grp(child.children[0])],
                                )],
                            ));
                        }
                    }
                }
            }
            LogicalOp::Mat { out: mat_out } => {
                for ce in memo.group_exprs(expr.children[0]) {
                    let child = memo.expr(ce);
                    if let LogicalOp::Select { pred } = child.op {
                        out.push(op(
                            LogicalOp::Select { pred },
                            vec![op(
                                LogicalOp::Mat { out: *mat_out },
                                vec![grp(child.children[0])],
                            )],
                        ));
                    }
                }
            }
            _ => {}
        }
        out
    }
}

/// Commutes `Select` with `Unnest` in both directions (push only when the
/// predicate ignores the unnested references).
pub struct SelectUnnestSwap;

impl<'e> TransformRule<M<'e>> for SelectUnnestSwap {
    fn name(&self) -> &'static str {
        crate::config::rule_names::SELECT_UNNEST_SWAP
    }
    fn signature(&self) -> RuleSignature {
        RuleSignature {
            consumes: &["Select", "Unnest"],
            produces: &["Select", "Unnest"],
            generative: false,
        }
    }
    fn apply(&self, model: &M<'e>, memo: &Memo<M<'e>>, expr: &Expr<M<'e>>) -> Vec<Rw> {
        let mut out = Vec::new();
        match &expr.op {
            LogicalOp::Select { pred } => {
                let used = model.pred_vars(*pred);
                for ce in memo.group_exprs(expr.children[0]) {
                    let child = memo.expr(ce);
                    if let LogicalOp::Unnest { out: u } = child.op {
                        if !used.contains(u) {
                            out.push(op(
                                LogicalOp::Unnest { out: u },
                                vec![op(
                                    LogicalOp::Select { pred: *pred },
                                    vec![grp(child.children[0])],
                                )],
                            ));
                        }
                    }
                }
            }
            LogicalOp::Unnest { out: u } => {
                for ce in memo.group_exprs(expr.children[0]) {
                    let child = memo.expr(ce);
                    if let LogicalOp::Select { pred } = child.op {
                        out.push(op(
                            LogicalOp::Select { pred },
                            vec![op(
                                LogicalOp::Unnest { out: *u },
                                vec![grp(child.children[0])],
                            )],
                        ));
                    }
                }
            }
            _ => {}
        }
        out
    }
}

/// Pushes `Select` into the join input that covers its variables, and
/// pulls selections back above joins (exhaustive pairing).
pub struct SelectJoinPush;

impl<'e> TransformRule<M<'e>> for SelectJoinPush {
    fn name(&self) -> &'static str {
        crate::config::rule_names::SELECT_JOIN_PUSH
    }
    fn signature(&self) -> RuleSignature {
        RuleSignature {
            consumes: &["Select", "Join"],
            produces: &["Select", "Join"],
            generative: false,
        }
    }
    fn apply(&self, model: &M<'e>, memo: &Memo<M<'e>>, expr: &Expr<M<'e>>) -> Vec<Rw> {
        let mut out = Vec::new();
        match &expr.op {
            LogicalOp::Select { pred } => {
                let used = model.pred_vars(*pred);
                for ce in memo.group_exprs(expr.children[0]) {
                    let child = memo.expr(ce);
                    if let LogicalOp::Join { pred: jp } = child.op {
                        let (l, r) = (child.children[0], child.children[1]);
                        if used.is_subset(memo.props(l).vars) {
                            out.push(op(
                                LogicalOp::Join { pred: jp },
                                vec![op(LogicalOp::Select { pred: *pred }, vec![grp(l)]), grp(r)],
                            ));
                        }
                        if used.is_subset(memo.props(r).vars) {
                            out.push(op(
                                LogicalOp::Join { pred: jp },
                                vec![grp(l), op(LogicalOp::Select { pred: *pred }, vec![grp(r)])],
                            ));
                        }
                    }
                }
            }
            LogicalOp::Join { pred: jp } => {
                // Pull a selection out of either input.
                for side in 0..2 {
                    for ce in memo.group_exprs(expr.children[side]) {
                        let child = memo.expr(ce);
                        if let LogicalOp::Select { pred } = child.op {
                            let mut inputs = vec![grp(expr.children[0]), grp(expr.children[1])];
                            inputs[side] = grp(child.children[0]);
                            out.push(op(
                                LogicalOp::Select { pred },
                                vec![op(LogicalOp::Join { pred: *jp }, inputs)],
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
        out
    }
}

/// Merges a selection that spans both join inputs into the join predicate
/// — `Select[p](Join[jp](L, R)) → Join[jp ∧ p](L, R)` — so conditions the
/// simplifier left above a join (e.g. the OID equality of a two-collection
/// `FROM` clause) become hash-join keys.
pub struct SelectIntoJoin;

impl<'e> TransformRule<M<'e>> for SelectIntoJoin {
    fn name(&self) -> &'static str {
        crate::config::rule_names::SELECT_INTO_JOIN
    }
    fn signature(&self) -> RuleSignature {
        // The merged predicate is a union of existing term sets — still
        // inside the finite closure of the query's conjuncts.
        RuleSignature {
            consumes: &["Select"],
            produces: &["Join"],
            generative: false,
        }
    }
    fn apply(&self, model: &M<'e>, memo: &Memo<M<'e>>, expr: &Expr<M<'e>>) -> Vec<Rw> {
        let LogicalOp::Select { pred } = expr.op else {
            return vec![];
        };
        let used = model.pred_vars(pred);
        let mut out = Vec::new();
        for ce in memo.group_exprs(expr.children[0]) {
            let child = memo.expr(ce);
            let LogicalOp::Join { pred: jp } = child.op else {
                continue;
            };
            let (l, r) = (child.children[0], child.children[1]);
            let (lv, rv) = (memo.props(l).vars, memo.props(r).vars);
            // Only when the selection genuinely spans both sides (one-sided
            // selections are SelectJoinPush's business). Equality terms
            // lead so the merged predicate stays hash-joinable.
            if used.is_subset(lv) || used.is_subset(rv) {
                continue;
            }
            let mut terms = model.env.preds.pred(jp).terms.clone();
            terms.extend(model.env.preds.pred(pred).terms.iter().cloned());
            terms.sort_by_key(|t| t.op != oodb_algebra::CmpOp::Eq);
            let merged = model.env.preds.intern(oodb_algebra::Pred { terms });
            out.push(op(LogicalOp::Join { pred: merged }, vec![grp(l), grp(r)]));
        }
        out
    }
}

/// **Mat→Join** — the paper's pivotal rule: "if the scope introduced by a
/// materialize operator is actually a scannable object (a set object,
/// file, etc.), the materialize operator can be transformed into a join."
/// The scanned collection is the reference field's declared domain, or the
/// target type's extent. Components without either (the paper's `Plant`)
/// cannot be joined and must be assembled.
pub struct MatToJoin;

impl<'e> TransformRule<M<'e>> for MatToJoin {
    fn name(&self) -> &'static str {
        crate::config::rule_names::MAT_TO_JOIN
    }
    fn signature(&self) -> RuleSignature {
        // Interns one canonical reference equality per materialized
        // variable: finitely many, so not generative.
        RuleSignature {
            consumes: &["Mat"],
            produces: &["Join", "Get"],
            generative: false,
        }
    }
    fn apply(&self, model: &M<'e>, _memo: &Memo<M<'e>>, expr: &Expr<M<'e>>) -> Vec<Rw> {
        let LogicalOp::Mat { out: mat_out } = expr.op else {
            return vec![];
        };
        let Some(coll) = model.var_domain(mat_out) else {
            return vec![];
        };
        let VarOrigin::Mat { src, field } = model.env.scopes.var(mat_out).origin else {
            return vec![];
        };
        let ref_operand = match field {
            Some(f) => Operand::RefField { var: src, field: f },
            None => Operand::VarRef(src),
        };
        let pred = model.env.preds.cmp(
            ref_operand,
            oodb_algebra::CmpOp::Eq,
            Operand::VarOid(mat_out),
        );
        vec![op(
            LogicalOp::Join { pred },
            vec![
                grp(expr.children[0]),
                op(LogicalOp::Get { coll, var: mat_out }, vec![]),
            ],
        )]
    }
}

/// Join commutativity. "Join commutativity permits exploring query plan
/// alternatives that are usually ignored in object query optimization,
/// e.g., traversing single-directional inter-object links (pointers) in
/// their opposite (not pre-computed) direction" — because hybrid hash join
/// is directional (hash table on the left/referenced side), this rule is
/// what makes the joined form of a Mat efficiently implementable at all.
pub struct JoinCommute;

impl<'e> TransformRule<M<'e>> for JoinCommute {
    fn name(&self) -> &'static str {
        crate::config::rule_names::JOIN_COMMUTE
    }
    fn signature(&self) -> RuleSignature {
        RuleSignature {
            consumes: &["Join"],
            produces: &["Join"],
            generative: false,
        }
    }
    fn apply(&self, _model: &M<'e>, _memo: &Memo<M<'e>>, expr: &Expr<M<'e>>) -> Vec<Rw> {
        let LogicalOp::Join { pred } = expr.op else {
            return vec![];
        };
        vec![op(
            LogicalOp::Join { pred },
            vec![grp(expr.children[1]), grp(expr.children[0])],
        )]
    }
}

/// Join associativity: `(A ⋈ B) ⋈ C → A ⋈ (B ⋈ C)` when the outer
/// predicate only references B and C. With commutativity this reaches all
/// join orders. "Join associativity is closely related to the
/// commutativity of multiple materialize operators."
pub struct JoinAssoc;

impl<'e> TransformRule<M<'e>> for JoinAssoc {
    fn name(&self) -> &'static str {
        crate::config::rule_names::JOIN_ASSOC
    }
    fn signature(&self) -> RuleSignature {
        RuleSignature {
            consumes: &["Join"],
            produces: &["Join"],
            generative: false,
        }
    }
    fn apply(&self, model: &M<'e>, memo: &Memo<M<'e>>, expr: &Expr<M<'e>>) -> Vec<Rw> {
        let LogicalOp::Join { pred: p2 } = expr.op else {
            return vec![];
        };
        let mut out = Vec::new();
        let c = expr.children[1];
        for le in memo.group_exprs(expr.children[0]) {
            let lexpr = memo.expr(le);
            if let LogicalOp::Join { pred: p1 } = lexpr.op {
                let (a, b) = (lexpr.children[0], lexpr.children[1]);
                let p2_vars = model.pred_vars(p2);
                if p2_vars.is_subset(memo.props(b).vars.union(memo.props(c).vars)) {
                    out.push(op(
                        LogicalOp::Join { pred: p1 },
                        vec![
                            grp(a),
                            op(LogicalOp::Join { pred: p2 }, vec![grp(b), grp(c)]),
                        ],
                    ));
                }
            }
        }
        out
    }
}

/// Commutes adjacent `Mat` operators: "the materialize operators can trade
/// their positions in the query expression, with the condition that
/// 'country' must be materialized before 'president'" — i.e. they commute
/// unless one's source is the other's output.
pub struct MatMatSwap;

impl<'e> TransformRule<M<'e>> for MatMatSwap {
    fn name(&self) -> &'static str {
        crate::config::rule_names::MAT_MAT_SWAP
    }
    fn signature(&self) -> RuleSignature {
        RuleSignature {
            consumes: &["Mat"],
            produces: &["Mat"],
            generative: false,
        }
    }
    fn apply(&self, model: &M<'e>, memo: &Memo<M<'e>>, expr: &Expr<M<'e>>) -> Vec<Rw> {
        let LogicalOp::Mat { out: o1 } = expr.op else {
            return vec![];
        };
        let VarOrigin::Mat { src: s1, .. } = model.env.scopes.var(o1).origin else {
            return vec![];
        };
        let mut out = Vec::new();
        for ce in memo.group_exprs(expr.children[0]) {
            let child = memo.expr(ce);
            if let LogicalOp::Mat { out: o2 } = child.op {
                // o1 must not depend on o2, and o1's source must already be
                // in scope beneath o2.
                if s1 != o2 && memo.props(child.children[0]).vars.contains(s1) {
                    out.push(op(
                        LogicalOp::Mat { out: o2 },
                        vec![op(LogicalOp::Mat { out: o1 }, vec![grp(child.children[0])])],
                    ));
                }
            }
        }
        out
    }
}

/// Moves selections through set operators: a predicate distributes over
/// union and can be applied to the left input of intersection/difference
/// (and to the right of intersection). Part of the paper's "transformations
/// \[that\] move materialize operators above and beneath ('through')
/// selection, join, and set operators" family.
pub struct SelectSetOpPush;

impl<'e> TransformRule<M<'e>> for SelectSetOpPush {
    fn name(&self) -> &'static str {
        crate::config::rule_names::SELECT_SETOP_PUSH
    }
    fn signature(&self) -> RuleSignature {
        RuleSignature {
            consumes: &["Select"],
            produces: &["SetOp", "Select"],
            generative: false,
        }
    }
    fn apply(&self, _model: &M<'e>, memo: &Memo<M<'e>>, expr: &Expr<M<'e>>) -> Vec<Rw> {
        let LogicalOp::Select { pred } = expr.op else {
            return vec![];
        };
        let mut out = Vec::new();
        for ce in memo.group_exprs(expr.children[0]) {
            let child = memo.expr(ce);
            let LogicalOp::SetOp { kind } = child.op else {
                continue;
            };
            let (l, r) = (child.children[0], child.children[1]);
            let sel = |g| op(LogicalOp::Select { pred }, vec![grp(g)]);
            match kind {
                oodb_algebra::SetOpKind::Union => {
                    // σ(A ∪ B) = σA ∪ σB
                    out.push(op(LogicalOp::SetOp { kind }, vec![sel(l), sel(r)]));
                }
                oodb_algebra::SetOpKind::Intersect => {
                    // σ(A ∩ B) = σA ∩ B = A ∩ σB — push to the (likely
                    // smaller after filtering) left; exploration plus
                    // commutativity-by-hand covers the right.
                    out.push(op(LogicalOp::SetOp { kind }, vec![sel(l), grp(r)]));
                    out.push(op(LogicalOp::SetOp { kind }, vec![grp(l), sel(r)]));
                }
                oodb_algebra::SetOpKind::Difference => {
                    // σ(A \ B) = σA \ B  (NOT distributable into B).
                    out.push(op(LogicalOp::SetOp { kind }, vec![sel(l), grp(r)]));
                }
            }
        }
        out
    }
}

/// Moves a `Mat` through a set operator: materializing a component
/// commutes with identity-based union/intersection/difference because the
/// Mat neither filters nor changes identity.
pub struct MatSetOpPush;

impl<'e> TransformRule<M<'e>> for MatSetOpPush {
    fn name(&self) -> &'static str {
        crate::config::rule_names::MAT_SETOP_PUSH
    }
    fn signature(&self) -> RuleSignature {
        RuleSignature {
            consumes: &["Mat"],
            produces: &["SetOp", "Mat"],
            generative: false,
        }
    }
    fn apply(&self, _model: &M<'e>, memo: &Memo<M<'e>>, expr: &Expr<M<'e>>) -> Vec<Rw> {
        let LogicalOp::Mat { out: o } = expr.op else {
            return vec![];
        };
        let mut out = Vec::new();
        for ce in memo.group_exprs(expr.children[0]) {
            let child = memo.expr(ce);
            let LogicalOp::SetOp { kind } = child.op else {
                continue;
            };
            let (l, r) = (child.children[0], child.children[1]);
            let mat = |g| op(LogicalOp::Mat { out: o }, vec![grp(g)]);
            // Mat(A op B) = Mat(A) op Mat(B): set matching is on identity,
            // which Mat preserves.
            out.push(op(LogicalOp::SetOp { kind }, vec![mat(l), mat(r)]));
        }
        out
    }
}

/// Pushes a `Mat` into the join input holding its source variable, and
/// pulls it back above the join when no other operator depends on it.
pub struct MatJoinPush;

impl<'e> TransformRule<M<'e>> for MatJoinPush {
    fn name(&self) -> &'static str {
        crate::config::rule_names::MAT_JOIN_PUSH
    }
    fn signature(&self) -> RuleSignature {
        RuleSignature {
            consumes: &["Mat", "Join"],
            produces: &["Join", "Mat"],
            generative: false,
        }
    }
    fn apply(&self, model: &M<'e>, memo: &Memo<M<'e>>, expr: &Expr<M<'e>>) -> Vec<Rw> {
        let mut out = Vec::new();
        match expr.op {
            LogicalOp::Mat { out: o } => {
                let src = match model.env.scopes.var(o).origin {
                    VarOrigin::Mat { src, .. } => src,
                    _ => return vec![],
                };
                for ce in memo.group_exprs(expr.children[0]) {
                    let child = memo.expr(ce);
                    if let LogicalOp::Join { pred } = child.op {
                        let (l, r) = (child.children[0], child.children[1]);
                        if memo.props(l).vars.contains(src) {
                            out.push(op(
                                LogicalOp::Join { pred },
                                vec![op(LogicalOp::Mat { out: o }, vec![grp(l)]), grp(r)],
                            ));
                        }
                        if memo.props(r).vars.contains(src) {
                            out.push(op(
                                LogicalOp::Join { pred },
                                vec![grp(l), op(LogicalOp::Mat { out: o }, vec![grp(r)])],
                            ));
                        }
                    }
                }
            }
            LogicalOp::Join { pred } => {
                // Pull: Join(Mat(X), R) → Mat(Join(X, R)) when the join
                // predicate ignores the materialized component.
                let used = model.pred_vars(pred);
                for side in 0..2 {
                    for ce in memo.group_exprs(expr.children[side]) {
                        let child = memo.expr(ce);
                        if let LogicalOp::Mat { out: o } = child.op {
                            if !used.contains(o) {
                                let mut inputs = vec![grp(expr.children[0]), grp(expr.children[1])];
                                inputs[side] = grp(child.children[0]);
                                out.push(op(
                                    LogicalOp::Mat { out: o },
                                    vec![op(LogicalOp::Join { pred }, inputs)],
                                ));
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        out
    }
}
