//! Implementation rules: logical operators → execution algorithms.
//!
//! "The optimizer chooses algorithms based on implementation rules, an
//! algorithm's ability to deliver a logical expression with the desired
//! physical properties, and cost estimations." Every rule here checks
//! required properties and returns nothing when it cannot deliver them —
//! the index-scan rule's inability to deliver materialized components in
//! memory is what routes Query 3 through the assembly enforcer.

use crate::model::OodbModel;
use oodb_algebra::{CmpOp, LogicalOp, Operand, PhysProps, PhysicalOp, VarOrigin, VarSet};
use volcano::{Candidate, Expr, ImplRule, Memo};

type M<'e> = OodbModel<'e>;

/// `Get` → sequential file scan of the dense collection pages.
pub struct FileScanImpl;

impl<'e> ImplRule<M<'e>> for FileScanImpl {
    fn name(&self) -> &'static str {
        crate::config::rule_names::FILE_SCAN
    }
    fn implementations(
        &self,
        model: &M<'e>,
        _memo: &Memo<M<'e>>,
        expr: &Expr<M<'e>>,
        _required: &PhysProps,
    ) -> Vec<Candidate<M<'e>>> {
        let LogicalOp::Get { coll, var } = expr.op else {
            return vec![];
        };
        let op = PhysicalOp::FileScan { coll, var };
        let (_, cost) = model.phys_estimate(&op, &[]);
        vec![Candidate {
            op,
            children: vec![],
            input_props: vec![],
            cost,
            delivers: PhysProps::in_memory(VarSet::single(var)),
        }]
    }
}

/// The **collapse-to-index-scan** rule: a `Select` whose single equality
/// conjunct is covered by an (attribute or path) index collapses the whole
/// select–materialize–get chain into one index scan. "In this case, the
/// mayor component objects are never read into memory" — the scan delivers
/// only the base variable, which is precisely why it cannot serve Query 3
/// directly.
pub struct CollapseToIndexScanImpl;

impl<'e> ImplRule<M<'e>> for CollapseToIndexScanImpl {
    fn name(&self) -> &'static str {
        crate::config::rule_names::COLLAPSE_TO_INDEX_SCAN
    }
    fn implementations(
        &self,
        model: &M<'e>,
        memo: &Memo<M<'e>>,
        expr: &Expr<M<'e>>,
        _required: &PhysProps,
    ) -> Vec<Candidate<M<'e>>> {
        let LogicalOp::Select { pred } = expr.op else {
            return vec![];
        };
        let p = model.env.preds.pred(pred);
        let [term] = p.terms.as_slice() else {
            return vec![];
        };
        // Equality uses a point lookup; ordered comparisons use a B-tree
        // range scan (an extension beyond the paper's equality-only rule).
        let _ = CmpOp::Eq; // (all operators accepted)
        let (var, field) = match (&term.left, &term.right) {
            (Operand::Attr { var, field }, Operand::Const(_))
            | (Operand::Const(_), Operand::Attr { var, field }) => (*var, *field),
            _ => return vec![],
        };
        let Some((coll, base, links)) = model.index_path_of(var) else {
            return vec![];
        };
        let Some((index_id, idx)) = model.usable_index(coll, &links, field) else {
            return vec![];
        };
        // The collapsed scan reproduces the *entire* group only if the
        // group's scope is exactly the materialization chain — a join
        // partner's bindings cannot come out of an index.
        let group_vars = memo.props(expr.group).vars;
        if !group_vars.is_subset(model.chain_vars(var)) {
            return vec![];
        }
        // And the input must BE the unfiltered chain: the child group must
        // hold a pure `Mat*(Get)` witness. Without this check, a
        // conjunct-split sibling selection sitting between the Select and
        // the Get would be silently discarded.
        if !pure_mat_chain(memo, expr.children[0], base) {
            return vec![];
        }
        let _ = idx;
        let op = PhysicalOp::IndexScan {
            index: index_id,
            var: base,
            pred,
        };
        let (_, cost) = model.phys_estimate(&op, &[]);
        vec![Candidate {
            op,
            children: vec![],
            input_props: vec![],
            cost,
            delivers: PhysProps::in_memory(VarSet::single(base)),
        }]
    }
}

/// True when `group` provably denotes the *unfiltered* materialization
/// chain rooted at a `Get` of `base`: some member expression is literally
/// `Mat*(Get{base})`. Because a memo group is an equivalence class, one
/// such witness certifies the whole group's semantics.
fn pure_mat_chain(
    memo: &Memo<OodbModel<'_>>,
    group: volcano::GroupId,
    base: oodb_algebra::VarId,
) -> bool {
    fn walk(
        memo: &Memo<OodbModel<'_>>,
        group: volcano::GroupId,
        base: oodb_algebra::VarId,
        visited: &mut Vec<volcano::GroupId>,
    ) -> bool {
        let g = memo.find(group);
        if visited.contains(&g) {
            return false;
        }
        visited.push(g);
        memo.group_exprs(g).into_iter().any(|e| {
            let expr = memo.expr(e);
            match expr.op {
                LogicalOp::Get { var, .. } => var == base,
                LogicalOp::Mat { .. } => walk(memo, expr.children[0], base, visited),
                _ => false,
            }
        })
    }
    walk(memo, group, base, &mut Vec::new())
}

/// Threads a required sort order down to an input that can preserve it
/// (the order's variable must be in the input's scope).
fn pass_order(
    required: &PhysProps,
    child_vars: oodb_algebra::VarSet,
) -> Option<oodb_algebra::SortSpec> {
    required.order.filter(|o| child_vars.contains(o.var))
}

/// `Select` → `Filter` over in-memory objects.
pub struct FilterImpl;

impl<'e> ImplRule<M<'e>> for FilterImpl {
    fn name(&self) -> &'static str {
        crate::config::rule_names::FILTER
    }
    fn implementations(
        &self,
        model: &M<'e>,
        memo: &Memo<M<'e>>,
        expr: &Expr<M<'e>>,
        required: &PhysProps,
    ) -> Vec<Candidate<M<'e>>> {
        let LogicalOp::Select { pred } = expr.op else {
            return vec![];
        };
        let input = required.in_memory.union(model.pred_mem_vars(pred));
        let child = *memo.props(expr.children[0]);
        let order = pass_order(required, child.vars);
        let op = PhysicalOp::Filter { pred };
        let (_, cost) = model.phys_estimate(&op, &[child]);
        let props = PhysProps {
            in_memory: input,
            order,
        };
        vec![Candidate {
            op,
            children: vec![expr.children[0]],
            input_props: vec![props],
            cost,
            delivers: props,
        }]
    }
}

/// `Join` → hybrid hash join. **Directional**: the hash table is built on
/// the *left* input; for reference equi-joins the left input must be the
/// referenced (OID) side — "this algorithm also supports equality of a
/// reference attribute on one side and object identifiers on the other
/// side". Join commutativity is what brings the referenced side to the
/// left; disable it and this rule goes silent on Mat→Join output, forcing
/// naive pointer chasing (Table 2, "W/o Comm.").
pub struct HybridHashJoinImpl;

impl<'e> ImplRule<M<'e>> for HybridHashJoinImpl {
    fn name(&self) -> &'static str {
        crate::config::rule_names::HYBRID_HASH_JOIN
    }
    fn implementations(
        &self,
        model: &M<'e>,
        memo: &Memo<M<'e>>,
        expr: &Expr<M<'e>>,
        required: &PhysProps,
    ) -> Vec<Candidate<M<'e>>> {
        let LogicalOp::Join { pred } = expr.op else {
            return vec![];
        };
        let (lg, rg) = (expr.children[0], expr.children[1]);
        let (lp, rp) = (*memo.props(lg), *memo.props(rg));
        let p = model.env.preds.pred(pred);
        // Hashing needs at least one equality term.
        let Some(eq) = p.terms.iter().find(|t| t.op == CmpOp::Eq) else {
            return vec![];
        };
        // Reference equi-join: the build (left) side must hold the
        // referenced objects.
        if let Some((_, target)) = eq.as_ref_eq() {
            if !lp.vars.contains(target) {
                return vec![];
            }
        }
        let mem = model.pred_mem_vars(pred);
        let l_req = required
            .in_memory
            .intersect(lp.vars)
            .union(mem.intersect(lp.vars));
        let r_req = required
            .in_memory
            .intersect(rp.vars)
            .union(mem.intersect(rp.vars));
        let op = PhysicalOp::HybridHashJoin { pred };
        let (_, cost) = model.phys_estimate(&op, &[lp, rp]);
        vec![Candidate {
            op,
            children: vec![lg, rg],
            input_props: vec![PhysProps::in_memory(l_req), PhysProps::in_memory(r_req)],
            cost,
            delivers: PhysProps::in_memory(l_req.union(r_req)),
        }]
    }
}

/// `Join` → pointer join (Shekita–Carey): when the right input is a bare
/// scan of the reference's full domain, skip the scan entirely and resolve
/// references by partitioned page fetches — "naive traversal of such
/// references ('goto's on disk')" done as well as it can be done.
pub struct PointerJoinImpl;

impl<'e> ImplRule<M<'e>> for PointerJoinImpl {
    fn name(&self) -> &'static str {
        crate::config::rule_names::POINTER_JOIN
    }
    fn implementations(
        &self,
        model: &M<'e>,
        memo: &Memo<M<'e>>,
        expr: &Expr<M<'e>>,
        required: &PhysProps,
    ) -> Vec<Candidate<M<'e>>> {
        let LogicalOp::Join { pred } = expr.op else {
            return vec![];
        };
        let p = model.env.preds.pred(pred);
        let [term] = p.terms.as_slice() else {
            return vec![];
        };
        let Some((_, target)) = term.as_ref_eq() else {
            return vec![];
        };
        let (lg, rg) = (expr.children[0], expr.children[1]);
        let (lp, rp) = (*memo.props(lg), *memo.props(rg));
        // Right side must be exactly the unfiltered domain scan of the
        // target variable (the shape Mat→Join produces).
        if !rp.vars.contains(target) || lp.vars.contains(target) {
            return vec![];
        }
        let Some(domain) = model.var_domain(target) else {
            return vec![];
        };
        let is_pure_get = memo.group_exprs(rg).iter().any(|&e| {
            matches!(
                memo.expr(e).op,
                LogicalOp::Get { coll, var } if coll == domain && var == target
            )
        });
        let dc = model.env.catalog.collection(domain);
        if !is_pure_get || (rp.card - dc.cardinality as f64).abs() > 0.5 {
            return vec![];
        }
        let mem = model.pred_mem_vars(pred);
        let l_req = required
            .in_memory
            .remove(target)
            .intersect(lp.vars)
            .union(mem.intersect(lp.vars));
        let order = pass_order(required, lp.vars);
        let op = PhysicalOp::PointerJoin { pred };
        let (_, cost) = model.phys_estimate(&op, &[lp]);
        vec![Candidate {
            op,
            children: vec![lg],
            input_props: vec![PhysProps {
                in_memory: l_req,
                order,
            }],
            cost,
            delivers: PhysProps {
                in_memory: l_req.insert(target),
                order,
            },
        }]
    }
}

/// `Mat` → assembly: the assembly operator in its *implementation* role.
pub struct AssemblyMatImpl;

impl<'e> ImplRule<M<'e>> for AssemblyMatImpl {
    fn name(&self) -> &'static str {
        crate::config::rule_names::ASSEMBLY_MAT
    }
    fn implementations(
        &self,
        model: &M<'e>,
        memo: &Memo<M<'e>>,
        expr: &Expr<M<'e>>,
        required: &PhysProps,
    ) -> Vec<Candidate<M<'e>>> {
        let LogicalOp::Mat { out } = expr.op else {
            return vec![];
        };
        let VarOrigin::Mat { src, field } = model.env.scopes.var(out).origin else {
            return vec![];
        };
        let mut input = required.in_memory.remove(out);
        // Reading src's reference field needs src in memory; a dereference
        // of an unnested reference value does not.
        if field.is_some() {
            input = input.insert(src);
        }
        let window = model.config.assembly_window;
        let child = *memo.props(expr.children[0]);
        let order = pass_order(required, child.vars);
        let op = PhysicalOp::Assembly {
            targets: vec![out],
            window,
        };
        let (_, cost) = model.phys_estimate(&op, &[child]);
        vec![Candidate {
            op,
            children: vec![expr.children[0]],
            input_props: vec![PhysProps {
                in_memory: input,
                order,
            }],
            cost,
            delivers: PhysProps {
                in_memory: input.insert(out),
                order,
            },
        }]
    }
}

/// `Join` → merge join (sort-order extension): for a value equality
/// between attributes, require each input sorted on its attribute and
/// merge in one pass. Whether the sorts (or ordered index sweeps) beneath
/// are worth it against a hash join is the cost model's call.
pub struct MergeJoinImpl;

impl<'e> ImplRule<M<'e>> for MergeJoinImpl {
    fn name(&self) -> &'static str {
        crate::config::rule_names::MERGE_JOIN
    }
    fn implementations(
        &self,
        model: &M<'e>,
        memo: &Memo<M<'e>>,
        expr: &Expr<M<'e>>,
        required: &PhysProps,
    ) -> Vec<Candidate<M<'e>>> {
        let LogicalOp::Join { pred } = expr.op else {
            return vec![];
        };
        let p = model.env.preds.pred(pred);
        // First equality term must compare two attributes.
        let Some(eq) = p.terms.iter().find(|t| t.op == CmpOp::Eq) else {
            return vec![];
        };
        let (Operand::Attr { var: lv, field: lf }, Operand::Attr { var: rv, field: rf }) =
            (&eq.left, &eq.right)
        else {
            return vec![];
        };
        let (lg, rg) = (expr.children[0], expr.children[1]);
        let (lp, rp) = (*memo.props(lg), *memo.props(rg));
        // Assign each attribute to the side holding its variable.
        let ((lkey_var, lkey_field), (rkey_var, rkey_field)) =
            if lp.vars.contains(*lv) && rp.vars.contains(*rv) {
                ((*lv, *lf), (*rv, *rf))
            } else if lp.vars.contains(*rv) && rp.vars.contains(*lv) {
                ((*rv, *rf), (*lv, *lf))
            } else {
                return vec![];
            };
        let mem = model.pred_mem_vars(pred);
        let l_req = required
            .in_memory
            .intersect(lp.vars)
            .union(mem.intersect(lp.vars));
        let r_req = required
            .in_memory
            .intersect(rp.vars)
            .union(mem.intersect(rp.vars));
        let op = PhysicalOp::MergeJoin { pred };
        let (_, cost) = model.phys_estimate(&op, &[lp, rp]);
        let l_order = oodb_algebra::SortSpec {
            var: lkey_var,
            field: lkey_field,
        };
        vec![Candidate {
            op,
            children: vec![lg, rg],
            input_props: vec![
                PhysProps {
                    in_memory: l_req,
                    order: Some(l_order),
                },
                PhysProps {
                    in_memory: r_req,
                    order: Some(oodb_algebra::SortSpec {
                        var: rkey_var,
                        field: rkey_field,
                    }),
                },
            ],
            cost,
            // Output inherits the left (outer) order on the join key.
            delivers: PhysProps {
                in_memory: l_req.union(r_req),
                order: Some(l_order),
            },
        }]
    }
}

/// `Mat` → warm-start assembly (the paper's Lesson 7 suggestion, gated by
/// [`crate::OptimizerConfig::enable_warm_assembly`]): "the ability to scan
/// a scannable object into main memory before the normal complex object
/// assembly operation commences." One sequential sweep of the component's
/// collection replaces per-reference faults — a win when references far
/// outnumber the collection's pages.
pub struct WarmAssemblyImpl;

impl<'e> ImplRule<M<'e>> for WarmAssemblyImpl {
    fn name(&self) -> &'static str {
        crate::config::rule_names::WARM_ASSEMBLY
    }
    fn implementations(
        &self,
        model: &M<'e>,
        memo: &Memo<M<'e>>,
        expr: &Expr<M<'e>>,
        required: &PhysProps,
    ) -> Vec<Candidate<M<'e>>> {
        let LogicalOp::Mat { out } = expr.op else {
            return vec![];
        };
        if model.var_domain(out).is_none() {
            return vec![]; // nothing scannable (the paper's Plant)
        }
        let VarOrigin::Mat { src, field } = model.env.scopes.var(out).origin else {
            return vec![];
        };
        let mut input = required.in_memory.remove(out);
        if field.is_some() {
            input = input.insert(src);
        }
        let child = *memo.props(expr.children[0]);
        let order = pass_order(required, child.vars);
        let op = PhysicalOp::WarmAssembly { target: out };
        let (_, cost) = model.phys_estimate(&op, &[child]);
        vec![Candidate {
            op,
            children: vec![expr.children[0]],
            input_props: vec![PhysProps {
                in_memory: input,
                order,
            }],
            cost,
            delivers: PhysProps {
                in_memory: input.insert(out),
                order,
            },
        }]
    }
}

/// `Unnest` → Alg-Unnest.
pub struct AlgUnnestImpl;

impl<'e> ImplRule<M<'e>> for AlgUnnestImpl {
    fn name(&self) -> &'static str {
        crate::config::rule_names::ALG_UNNEST
    }
    fn implementations(
        &self,
        model: &M<'e>,
        memo: &Memo<M<'e>>,
        expr: &Expr<M<'e>>,
        required: &PhysProps,
    ) -> Vec<Candidate<M<'e>>> {
        let LogicalOp::Unnest { out } = expr.op else {
            return vec![];
        };
        let VarOrigin::Unnest { src, .. } = model.env.scopes.var(out).origin else {
            return vec![];
        };
        let input = required.in_memory.remove(out).insert(src);
        let child = *memo.props(expr.children[0]);
        let order = pass_order(required, child.vars);
        let op = PhysicalOp::AlgUnnest { out };
        let (_, cost) = model.phys_estimate(&op, &[child]);
        let props = PhysProps {
            in_memory: input,
            order,
        };
        vec![Candidate {
            op,
            children: vec![expr.children[0]],
            input_props: vec![props],
            cost,
            delivers: props,
        }]
    }
}

/// `Project` → Alg-Project: "requires that its inputs deliver assembled
/// ... objects present in memory" — the requirement that drives Query 3's
/// goal-directed search.
pub struct AlgProjectImpl;

impl<'e> ImplRule<M<'e>> for AlgProjectImpl {
    fn name(&self) -> &'static str {
        crate::config::rule_names::ALG_PROJECT
    }
    fn implementations(
        &self,
        model: &M<'e>,
        memo: &Memo<M<'e>>,
        expr: &Expr<M<'e>>,
        required: &PhysProps,
    ) -> Vec<Candidate<M<'e>>> {
        let LogicalOp::Project { items } = &expr.op else {
            return vec![];
        };
        let input = required.in_memory.union(model.items_mem_vars(items));
        let child = *memo.props(expr.children[0]);
        let order = pass_order(required, child.vars);
        let op = PhysicalOp::AlgProject {
            items: items.clone(),
        };
        let (_, cost) = model.phys_estimate(&op, &[child]);
        let props = PhysProps {
            in_memory: input,
            order,
        };
        vec![Candidate {
            op,
            children: vec![expr.children[0]],
            input_props: vec![props],
            cost,
            delivers: props,
        }]
    }
}

/// `Get` → full *ordered* index scan (sort-order extension): when the
/// goal requires tuples ordered by an indexed attribute (directly or
/// through a path covered by a path index), sweeping the whole index in
/// key order delivers the order without a sort — the classic "interesting
/// order" alternative. The predicate is the empty (true) conjunction,
/// marking a full scan.
pub struct OrderedIndexScanImpl;

impl<'e> ImplRule<M<'e>> for OrderedIndexScanImpl {
    fn name(&self) -> &'static str {
        crate::config::rule_names::ORDERED_INDEX_SCAN
    }
    fn implementations(
        &self,
        model: &M<'e>,
        _memo: &Memo<M<'e>>,
        expr: &Expr<M<'e>>,
        required: &PhysProps,
    ) -> Vec<Candidate<M<'e>>> {
        let LogicalOp::Get { coll, var } = expr.op else {
            return vec![];
        };
        let Some(key) = required.order else {
            return vec![];
        };
        // The ordering attribute must be reachable from this scan's
        // variable through an index on this collection.
        let Some((icoll, base, links)) = model.index_path_of(key.var) else {
            return vec![];
        };
        if icoll != coll || base != var {
            return vec![];
        }
        let Some((index_id, _)) = model.usable_index(coll, &links, key.field) else {
            return vec![];
        };
        let pred = model.env.preds.intern(oodb_algebra::Pred::default());
        let op = PhysicalOp::IndexScan {
            index: index_id,
            var,
            pred,
        };
        let (_, cost) = model.phys_estimate(&op, &[]);
        vec![Candidate {
            op,
            children: vec![],
            input_props: vec![],
            cost,
            delivers: PhysProps {
                in_memory: VarSet::single(var),
                order: Some(key),
            },
        }]
    }
}

/// Set operations → hash-based matching on object identity.
pub struct HashSetOpImpl;

impl<'e> ImplRule<M<'e>> for HashSetOpImpl {
    fn name(&self) -> &'static str {
        crate::config::rule_names::HASH_SET_OP
    }
    fn implementations(
        &self,
        model: &M<'e>,
        memo: &Memo<M<'e>>,
        expr: &Expr<M<'e>>,
        required: &PhysProps,
    ) -> Vec<Candidate<M<'e>>> {
        let LogicalOp::SetOp { kind } = expr.op else {
            return vec![];
        };
        let (lg, rg) = (expr.children[0], expr.children[1]);
        let op = PhysicalOp::HashSetOp { kind };
        let (_, cost) = model.phys_estimate(&op, &[*memo.props(lg), *memo.props(rg)]);
        vec![Candidate {
            op,
            children: vec![lg, rg],
            input_props: vec![*required, *required],
            cost,
            delivers: *required,
        }]
    }
}
