//! The assembly enforcer — assembly's second role.
//!
//! "In our framework, execution algorithms implement a logical operator,
//! enforce some physical property, or both. For instance, the assembly
//! algorithm is used to enforce the present-in-memory property and to
//! implement the logical materialize operator."
//!
//! Given a goal that requires a materialized component in memory which the
//! plans below cannot deliver (Query 3: the collapsed index scan delivers
//! cities only), the enforcer re-optimizes the same group *without* that
//! component and assembles it on top. Because enforcement happens after
//! the group's selections have been applied, only the surviving tuples'
//! components are assembled — the paper's three-orders-of-magnitude win.

use crate::model::OodbModel;
use oodb_algebra::{PhysProps, PhysicalOp, VarOrigin};
use volcano::{EnforceCandidate, Enforcer, GroupId, Memo};

type M<'e> = OodbModel<'e>;

/// Sort as the order enforcer (our extension beyond the 1993 prototype,
/// which had no second physical property). Sorting reads the ordering
/// attribute, so the sort variable must additionally be in memory.
pub struct SortEnforcer;

impl<'e> Enforcer<M<'e>> for SortEnforcer {
    fn name(&self) -> &'static str {
        crate::config::rule_names::SORT_ENFORCER
    }

    fn enforce(
        &self,
        model: &M<'e>,
        memo: &Memo<M<'e>>,
        group: GroupId,
        required: &PhysProps,
    ) -> Vec<EnforceCandidate<M<'e>>> {
        let Some(key) = required.order else {
            return vec![];
        };
        let props = memo.props(group);
        if !props.vars.contains(key.var) {
            return vec![];
        }
        let card = props.card.max(1.0);
        let input = PhysProps {
            in_memory: required.in_memory.insert(key.var),
            order: None,
        };
        vec![EnforceCandidate {
            op: PhysicalOp::Sort { key },
            input_props: input,
            cost: crate::cost::Cost::cpu(card * card.log2().max(1.0) * model.params.cpu_tuple_s),
            delivers: PhysProps {
                in_memory: input.in_memory,
                order: Some(key),
            },
        }]
    }
}

/// Assembly as a present-in-memory enforcer.
pub struct AssemblyEnforcer;

impl<'e> Enforcer<M<'e>> for AssemblyEnforcer {
    fn name(&self) -> &'static str {
        crate::config::rule_names::ASSEMBLY_ENFORCER
    }

    fn enforce(
        &self,
        model: &M<'e>,
        memo: &Memo<M<'e>>,
        group: GroupId,
        required: &PhysProps,
    ) -> Vec<EnforceCandidate<M<'e>>> {
        let props = memo.props(group);
        let card = props.card;
        let mut out = Vec::new();
        for v in required.in_memory.iter() {
            if !props.vars.contains(v) {
                continue; // not in scope here: nothing to enforce
            }
            let VarOrigin::Mat { src, field } = model.env.scopes.var(v).origin else {
                continue; // scanned variables come from scans, not enforcers
            };
            let mut input = required.in_memory.remove(v);
            if field.is_some() {
                input = input.insert(src);
            }
            let window = model.config.assembly_window;
            out.push(EnforceCandidate {
                op: PhysicalOp::Assembly {
                    targets: vec![v],
                    window,
                },
                input_props: PhysProps::in_memory(input),
                cost: model.assembly_cost(v, card, window),
                delivers: PhysProps::in_memory(input.insert(v)),
            });
        }
        out
    }
}
