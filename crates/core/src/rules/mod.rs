//! The Open OODB rule library: transformations, implementations,
//! enforcers, and the rule-set constructor.

pub mod enforce;
pub mod implement;
pub mod transform;

use crate::config::{rule_names as rn, OptimizerConfig};
use crate::model::OodbModel;
use volcano::RuleSet;

/// Builds the generated optimizer's rule set under a configuration
/// (disabled rules are simply not registered — exactly how the paper
/// "simulated" competing optimizers).
pub fn rule_set<'e>(config: &OptimizerConfig) -> RuleSet<OodbModel<'e>> {
    let mut rs = RuleSet::new();

    macro_rules! transform {
        ($name:expr, $rule:expr) => {
            if config.enabled($name) {
                rs.transforms.push(Box::new($rule));
            }
        };
    }
    macro_rules! implement {
        ($name:expr, $rule:expr) => {
            if config.enabled($name) {
                rs.impls.push(Box::new($rule));
            }
        };
    }

    transform!(rn::SELECT_SPLIT, transform::SelectSplit);
    transform!(rn::SELECT_MAT_SWAP, transform::SelectMatSwap);
    transform!(rn::SELECT_UNNEST_SWAP, transform::SelectUnnestSwap);
    transform!(rn::SELECT_JOIN_PUSH, transform::SelectJoinPush);
    transform!(rn::SELECT_INTO_JOIN, transform::SelectIntoJoin);
    transform!(rn::MAT_TO_JOIN, transform::MatToJoin);
    transform!(rn::JOIN_COMMUTE, transform::JoinCommute);
    transform!(rn::JOIN_ASSOC, transform::JoinAssoc);
    transform!(rn::MAT_MAT_SWAP, transform::MatMatSwap);
    transform!(rn::MAT_JOIN_PUSH, transform::MatJoinPush);
    transform!(rn::SELECT_SETOP_PUSH, transform::SelectSetOpPush);
    transform!(rn::MAT_SETOP_PUSH, transform::MatSetOpPush);

    implement!(rn::FILE_SCAN, implement::FileScanImpl);
    implement!(
        rn::COLLAPSE_TO_INDEX_SCAN,
        implement::CollapseToIndexScanImpl
    );
    implement!(rn::FILTER, implement::FilterImpl);
    implement!(rn::HYBRID_HASH_JOIN, implement::HybridHashJoinImpl);
    implement!(rn::POINTER_JOIN, implement::PointerJoinImpl);
    implement!(rn::ASSEMBLY_MAT, implement::AssemblyMatImpl);
    implement!(rn::ALG_UNNEST, implement::AlgUnnestImpl);
    implement!(rn::ALG_PROJECT, implement::AlgProjectImpl);
    implement!(rn::HASH_SET_OP, implement::HashSetOpImpl);
    if config.enable_warm_assembly && config.enabled(rn::WARM_ASSEMBLY) {
        rs.impls.push(Box::new(implement::WarmAssemblyImpl));
    }

    implement!(rn::ORDERED_INDEX_SCAN, implement::OrderedIndexScanImpl);
    implement!(rn::MERGE_JOIN, implement::MergeJoinImpl);

    if config.enabled(rn::ASSEMBLY_ENFORCER) {
        rs.enforcers.push(Box::new(enforce::AssemblyEnforcer));
    }
    if config.enabled(rn::SORT_ENFORCER) {
        rs.enforcers.push(Box::new(enforce::SortEnforcer));
    }
    rs
}

#[cfg(test)]
mod tests;
