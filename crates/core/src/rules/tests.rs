//! Per-rule unit tests: each transformation rule exercised in isolation
//! against a minimal query, and each implementation rule's feasibility
//! conditions probed directly.

use crate::config::OptimizerConfig;
use crate::cost::CostParams;
use crate::model::OodbModel;
use crate::optimizer::seed;
use crate::rules::{enforce, implement, transform};
use oodb_algebra::display::render_logical;
use oodb_algebra::{
    LogicalOp, LogicalPlan, Operand, PhysProps, QueryBuilder, QueryEnv, SetOpKind, VarSet,
};
use oodb_object::paper::{paper_model, PaperModel};
use oodb_object::Value;
use volcano::{Enforcer, ImplRule, Memo, Optimizer, RuleSet, SearchConfig, TransformRule};

fn model() -> PaperModel {
    paper_model()
}

/// Explores a plan with exactly the given transformation rules and
/// returns the rendered alternatives of the root group.
fn alternatives<'e>(
    env: &'e QueryEnv,
    plan: &LogicalPlan,
    transforms: Vec<Box<dyn TransformRule<OodbModel<'e>>>>,
) -> Vec<String> {
    let m = OodbModel::new(env, CostParams::default(), OptimizerConfig::all_rules());
    let rules = RuleSet {
        transforms,
        impls: vec![],
        enforcers: vec![],
    };
    let mut opt = Optimizer::new(&m, &rules, SearchConfig::default());
    let root = seed(&mut opt.memo, &m, plan);
    opt.explore_all();
    let memo = &opt.memo;
    memo.group_exprs(root)
        .into_iter()
        .map(|e| {
            let tree = extract(memo, e);
            render_logical(env, &tree)
        })
        .collect()
}

fn extract(memo: &Memo<OodbModel<'_>>, e: volcano::ExprId) -> LogicalPlan {
    let expr = memo.expr(e);
    LogicalPlan {
        op: expr.op.clone(),
        children: expr
            .children
            .iter()
            .map(|&c| extract(memo, memo.group_exprs(c)[0]))
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Transformation rules
// ---------------------------------------------------------------------

#[test]
fn select_split_pulls_each_conjunct() {
    let m = model();
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (emp, e) = qb.get(m.ids.employees, "e");
    let t1 = qb.term(
        qb.attr(e, m.ids.person_age),
        oodb_algebra::CmpOp::Ge,
        Operand::Const(Value::Int(32)),
    );
    let t2 = qb.term(
        qb.attr(e, m.ids.emp_salary),
        oodb_algebra::CmpOp::Lt,
        Operand::Const(Value::Int(90_000)),
    );
    let pred = qb.conj(vec![t1, t2]);
    let plan = qb.select(emp, pred);
    let env = qb.into_env();

    let alts = alternatives(&env, &plan, vec![Box::new(transform::SelectSplit)]);
    // Original + each conjunct pulled out.
    assert_eq!(alts.len(), 3, "{alts:#?}");
    assert!(alts
        .iter()
        .any(|a| a.starts_with("Select e.age >= 32\n") && a.contains("Select e.salary < 90000")));
    assert!(alts
        .iter()
        .any(|a| a.starts_with("Select e.salary < 90000\n") && a.contains("Select e.age >= 32")));
}

#[test]
fn select_mat_swap_is_bidirectional() {
    let m = model();
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (cities, c) = qb.get(m.ids.cities, "c");
    let (matd, _cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
    // Predicate on the BASE variable: pushable below the Mat.
    let pred = qb.eq_const(c, m.ids.city_name, Value::str("city-1"));
    let plan = qb.select(matd, pred);
    let env = qb.into_env();

    let alts = alternatives(&env, &plan, vec![Box::new(transform::SelectMatSwap)]);
    assert_eq!(alts.len(), 2, "{alts:#?}");
    assert!(alts.iter().any(|a| a.starts_with("Mat c.mayor")));
}

#[test]
fn select_on_mat_output_does_not_push() {
    let m = model();
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (cities, c) = qb.get(m.ids.cities, "c");
    let (matd, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
    // Predicate USES the materialized component: not pushable.
    let pred = qb.eq_const(cm, m.ids.person_name, Value::str("Joe"));
    let plan = qb.select(matd, pred);
    let env = qb.into_env();

    let alts = alternatives(&env, &plan, vec![Box::new(transform::SelectMatSwap)]);
    assert_eq!(
        alts.len(),
        1,
        "must not push below its own scope: {alts:#?}"
    );
}

#[test]
fn select_unnest_swap_pushes_task_predicates() {
    let m = model();
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (tasks, t) = qb.get(m.ids.tasks, "t");
    let (unn, _mm) = qb.unnest(tasks, t, m.ids.task_team_members, "m");
    let pred = qb.eq_const(t, m.ids.task_time, Value::Int(100));
    let plan = qb.select(unn, pred);
    let env = qb.into_env();

    let alts = alternatives(&env, &plan, vec![Box::new(transform::SelectUnnestSwap)]);
    assert_eq!(alts.len(), 2);
    assert!(alts.iter().any(|a| a.starts_with("Unnest t.team_members")));
}

#[test]
fn mat_to_join_requires_a_scannable_domain() {
    let m = model();
    // e.dept → Department has an extent: rewrites.
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (emp, e) = qb.get(m.ids.employees, "e");
    let (plan, _d) = qb.mat(emp, e, m.ids.emp_dept, "d");
    let env = qb.into_env();
    let alts = alternatives(&env, &plan, vec![Box::new(transform::MatToJoin)]);
    assert_eq!(alts.len(), 2);
    assert!(alts
        .iter()
        .any(|a| a.contains("Join e.dept == d.self") && a.contains("Get extent(Department): d")));

    // d.plant → Plant has NO extent: no rewrite.
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (dept, d) = qb.get(m.ids.department_extent, "d");
    let (plan, _dp) = qb.mat(dept, d, m.ids.dept_plant, "dp");
    let env = qb.into_env();
    let alts = alternatives(&env, &plan, vec![Box::new(transform::MatToJoin)]);
    assert_eq!(alts.len(), 1, "Plant is not scannable: {alts:#?}");
}

#[test]
fn join_commute_and_assoc_enumerate_orders() {
    let m = model();
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (emp, e) = qb.get(m.ids.employees, "e");
    let (dept, d) = qb.get(m.ids.department_extent, "d");
    let (job, j) = qb.get(m.ids.job_extent, "j");
    let p1 = qb.ref_eq(e, m.ids.emp_dept, d);
    let p2 = qb.ref_eq(e, m.ids.emp_job, j);
    let join1 = qb.join(emp, dept, p1);
    let plan = qb.join(join1, job, p2);
    let env = qb.into_env();

    let only_commute = alternatives(&env, &plan, vec![Box::new(transform::JoinCommute)]);
    assert_eq!(only_commute.len(), 2, "commute alone flips the root");

    let both = alternatives(
        &env,
        &plan,
        vec![
            Box::new(transform::JoinCommute),
            Box::new(transform::JoinAssoc),
        ],
    );
    // Three-relation join space with a connected predicate set.
    assert!(
        both.len() >= 4,
        "expected several orders, got {}",
        both.len()
    );
}

#[test]
fn mat_mat_swap_respects_dependencies() {
    let m = model();
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (cities, c) = qb.get(m.ids.cities, "c");
    let (p, _cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
    let (p, cc) = qb.mat(p, c, m.ids.city_country, "cc");
    let (plan, _pres) = qb.mat(p, cc, m.ids.country_president, "pres");
    let env = qb.into_env();

    let alts = alternatives(&env, &plan, vec![Box::new(transform::MatMatSwap)]);
    // president depends on country ("'country' must be materialized before
    // 'president'"), so only the independent mayor/country and
    // mayor/president pairs commute. The chain of 3 yields 3 orderings of
    // the top operator's group.
    assert!(alts.len() >= 2, "{alts:#?}");
    for a in &alts {
        let pres_pos = a.find("Mat cc.president: pres").expect("president present");
        let country_pos = a.find("Mat c.country: cc").expect("country present");
        assert!(
            pres_pos < country_pos,
            "president must stay above country (deeper in text = lower in plan):\n{a}"
        );
    }
}

#[test]
fn select_setop_push_distributes_over_union_not_difference_right() {
    let m = model();
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (l, c) = qb.get(m.ids.cities, "c");
    // Same-scope second input (a filtered variant of the same scan).
    let big = qb.cmp_const(
        c,
        m.ids.city_population,
        oodb_algebra::CmpOp::Ge,
        Value::Int(1000),
    );
    let r = qb.select(
        LogicalPlan::leaf(LogicalOp::Get {
            coll: m.ids.cities,
            var: c,
        }),
        big,
    );
    let _ = l;
    let union = qb.set_op(
        SetOpKind::Union,
        LogicalPlan::leaf(LogicalOp::Get {
            coll: m.ids.cities,
            var: c,
        }),
        r.clone(),
    );
    let name_pred = qb.eq_const(c, m.ids.city_name, Value::str("x"));
    let plan = qb.select(union, name_pred);
    let env = qb.into_env();
    let alts = alternatives(&env, &plan, vec![Box::new(transform::SelectSetOpPush)]);
    assert_eq!(alts.len(), 2);
    assert!(alts.iter().any(|a| a.starts_with("Union")), "{alts:#?}");

    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (l2, c2) = qb.get(m.ids.cities, "c");
    let r2 = LogicalPlan::leaf(LogicalOp::Get {
        coll: m.ids.cities,
        var: c2,
    });
    let diff = qb.set_op(SetOpKind::Difference, l2, r2);
    let pred = qb.eq_const(c2, m.ids.city_name, Value::str("x"));
    let plan = qb.select(diff, pred);
    let env = qb.into_env();
    let alts = alternatives(&env, &plan, vec![Box::new(transform::SelectSetOpPush)]);
    // One rewrite only (left side); predicate must never land on the
    // subtrahend alone.
    assert_eq!(alts.len(), 2);
    for a in &alts {
        if a.starts_with("Difference") {
            // Left child line carries the Select, right child does not.
            let lines: Vec<&str> = a.lines().collect();
            assert!(lines[1].contains("Select"), "{a}");
            assert!(!lines.last().unwrap().contains("Select"), "{a}");
        }
    }
}

#[test]
fn mat_setop_push_distributes_materialization() {
    let m = model();
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (l, c) = qb.get(m.ids.cities, "c");
    let r = LogicalPlan::leaf(LogicalOp::Get {
        coll: m.ids.cities,
        var: c,
    });
    let union = qb.set_op(SetOpKind::Union, l, r);
    let (plan, _cm) = qb.mat(union, c, m.ids.city_mayor, "cm");
    let env = qb.into_env();
    let alts = alternatives(&env, &plan, vec![Box::new(transform::MatSetOpPush)]);
    assert_eq!(alts.len(), 2);
    assert!(
        alts.iter()
            .any(|a| { a.starts_with("Union") && a.matches("Mat c.mayor").count() == 2 }),
        "{alts:#?}"
    );
}

// ---------------------------------------------------------------------
// Implementation rules: feasibility conditions
// ---------------------------------------------------------------------

fn probe_impl<'e>(
    env: &'e QueryEnv,
    plan: &LogicalPlan,
    rule: &dyn ImplRule<OodbModel<'e>>,
    required: PhysProps,
) -> usize {
    let m = OodbModel::new(env, CostParams::default(), OptimizerConfig::all_rules());
    let rules = RuleSet::new();
    let mut opt = Optimizer::new(&m, &rules, SearchConfig::default());
    let root = seed(&mut opt.memo, &m, plan);
    let memo = &opt.memo;
    let e = memo.group_exprs(root)[0];
    let expr_clone = {
        let ex = memo.expr(e);
        volcano::Expr {
            op: ex.op.clone(),
            children: ex.children.clone(),
            group: ex.group,
        }
    };
    rule.implementations(&m, memo, &expr_clone, &required).len()
}

#[test]
fn collapse_rule_feasibility_conditions() {
    let m = model();
    let q2 = |qb: &mut QueryBuilder| {
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (matd, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
        let pred = qb.eq_const(cm, m.ids.person_name, Value::str("Joe"));
        (qb.select(matd, pred), c)
    };

    // With the path index present: one candidate.
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (plan, _c) = q2(&mut qb);
    let env = qb.into_env();
    assert_eq!(
        probe_impl(
            &env,
            &plan,
            &implement::CollapseToIndexScanImpl,
            PhysProps::NONE
        ),
        1
    );

    // Index removed: no candidate.
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.with_only_indexes(&[]));
    let (plan, _c) = q2(&mut qb);
    let env = qb.into_env();
    assert_eq!(
        probe_impl(
            &env,
            &plan,
            &implement::CollapseToIndexScanImpl,
            PhysProps::NONE
        ),
        0
    );

    // Range predicate: served by a B-tree range sweep (our extension
    // beyond the paper's equality-only rule).
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (cities, c) = qb.get(m.ids.cities, "c");
    let (matd, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
    let pred = qb.cmp_const(
        cm,
        m.ids.person_name,
        oodb_algebra::CmpOp::Ge,
        Value::str("J"),
    );
    let plan = qb.select(matd, pred);
    let env = qb.into_env();
    assert_eq!(
        probe_impl(
            &env,
            &plan,
            &implement::CollapseToIndexScanImpl,
            PhysProps::NONE
        ),
        1
    );

    // Non-constant comparison: no index can answer it.
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (cities, c) = qb.get(m.ids.cities, "c");
    let (matd, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
    let pred = qb.eq_attr(cm, m.ids.person_name, c, m.ids.city_name);
    let plan = qb.select(matd, pred);
    let env = qb.into_env();
    assert_eq!(
        probe_impl(
            &env,
            &plan,
            &implement::CollapseToIndexScanImpl,
            PhysProps::NONE
        ),
        0
    );
}

#[test]
fn hash_join_is_directional_on_reference_joins() {
    let m = model();
    // Join(Employees, Get(Department)) with ref-eq: target d on the RIGHT —
    // infeasible for the directional hash join.
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (emp, e) = qb.get(m.ids.employees, "e");
    let (dept, d) = qb.get(m.ids.department_extent, "d");
    let pred = qb.ref_eq(e, m.ids.emp_dept, d);
    let wrong = qb.join(emp.clone(), dept.clone(), pred);
    let right = qb.join(dept, emp, pred);
    let env = qb.into_env();
    assert_eq!(
        probe_impl(
            &env,
            &wrong,
            &implement::HybridHashJoinImpl,
            PhysProps::NONE
        ),
        0,
        "referenced side must be on the left"
    );
    assert_eq!(
        probe_impl(
            &env,
            &right,
            &implement::HybridHashJoinImpl,
            PhysProps::NONE
        ),
        1
    );
    // Pointer join wants the opposite orientation.
    assert_eq!(
        probe_impl(&env, &wrong, &implement::PointerJoinImpl, PhysProps::NONE),
        1
    );
    assert_eq!(
        probe_impl(&env, &right, &implement::PointerJoinImpl, PhysProps::NONE),
        0
    );
}

#[test]
fn assembly_enforcer_only_offers_materializable_variables() {
    let m = model();
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (cities, c) = qb.get(m.ids.cities, "c");
    let (plan, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
    let env = qb.into_env();
    let om = OodbModel::new(&env, CostParams::default(), OptimizerConfig::all_rules());
    let rules = RuleSet::new();
    let mut opt = Optimizer::new(&om, &rules, SearchConfig::default());
    let root = seed(&mut opt.memo, &om, &plan);

    let enf = enforce::AssemblyEnforcer;
    // Requiring the Mat output: enforceable.
    let cands = enf.enforce(
        &om,
        &opt.memo,
        root,
        &PhysProps::in_memory(VarSet::single(cm)),
    );
    assert_eq!(cands.len(), 1);
    // Requiring only the scanned base: scans deliver it, enforcers don't.
    let cands = enf.enforce(
        &om,
        &opt.memo,
        root,
        &PhysProps::in_memory(VarSet::single(c)),
    );
    assert!(cands.is_empty());
}
