//! A sharded, statistics-epoch-aware plan cache.
//!
//! Industrial optimizers survive OLTP-scale query rates by *amortizing*
//! optimization: the transformation-based search this crate implements is
//! exactly the cost worth paying once and reusing. The paper's "<1 s
//! optimization time" claim becomes "<1 µs on a cache hit".
//!
//! Design:
//!
//! * **Key** — `(query fingerprint, rule-config fingerprint, stats epoch,
//!   index-set hash)`. The query fingerprint is the canonical structural
//!   hash of [`oodb_algebra::fingerprint`]; the full structural key is
//!   stored in the entry and compared on every hit, so a 64-bit collision
//!   costs a spurious miss, never a wrong plan.
//! * **Invalidation is lazy** — `Store::collect_statistics`,
//!   `Store::build_indexes`, and `Store::set_catalog` bump the catalog's
//!   monotonic `stats_epoch`; lookups under the new epoch simply miss, and
//!   the stale entries age out of the LRU. Nothing walks the cache.
//! * **Sharding** — N independent `std::sync::Mutex` shards selected by
//!   fingerprint, so concurrent workers rarely contend on one lock. No
//!   external dependencies.
//! * **Self-contained entries** — a cached [`PhysicalPlan`]'s `PredId` /
//!   `VarId` values are indices into the [`QueryEnv`] that existed when it
//!   was optimized; a fresh parse of the same text may intern differently.
//!   Every entry therefore carries its own `QueryEnv`, and hits execute
//!   against the *stored* environment, never the caller's.
//! * **Dynamic families** — ObjectStore-style dynamic plans
//!   ([`crate::dynamic::DynamicPlan`]) are cached as a whole per-index-
//!   subset family under an index-set-independent key: run-time selection
//!   happens per lookup, so adding or dropping an index changes which
//!   member runs without invalidating the family (the stats epoch still
//!   does).

use crate::cost::Cost;
use crate::dynamic::DynamicPlan;
use oodb_algebra::{PhysicalPlan, QueryEnv, QueryFingerprint, VarSet};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Full cache key: everything that must match for a cached plan to be
/// valid for a lookup.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Canonical query fingerprint hash ([`oodb_algebra::fingerprint`]).
    pub fingerprint: u64,
    /// [`crate::OptimizerConfig::fingerprint`] of the rule configuration.
    pub config: u64,
    /// The catalog's statistics epoch at optimization time.
    pub stats_epoch: u64,
    /// The catalog's index-set hash — zero for dynamic entries, whose
    /// plan family covers every index subset by construction.
    pub index_set: u64,
    /// Fingerprint of the [`oodb_algebra::StatsOverlay`] the plan was
    /// optimized under — zero for catalog-only plans. Without this, a
    /// plan re-optimized with feedback overrides would be served to the
    /// un-overlayed world after `\feedback clear` (and vice versa): the
    /// stats epoch alone cannot see overlay changes, which happen without
    /// touching the catalog.
    pub overlay: u64,
    /// Distinguishes static plans from dynamic plan families.
    pub dynamic: bool,
}

impl CacheKey {
    /// Key for a single statically chosen plan. `overlay` is the
    /// fingerprint of the selectivity overlay in force (0 = none).
    pub fn static_plan(
        fp: &QueryFingerprint,
        config: u64,
        stats_epoch: u64,
        index_set: u64,
        overlay: u64,
    ) -> Self {
        CacheKey {
            fingerprint: fp.hash,
            config,
            stats_epoch,
            index_set,
            overlay,
            dynamic: false,
        }
    }

    /// Key for a dynamic plan family (index-set independent). `overlay`
    /// is the fingerprint of the selectivity overlay in force (0 = none).
    pub fn dynamic_family(
        fp: &QueryFingerprint,
        config: u64,
        stats_epoch: u64,
        overlay: u64,
    ) -> Self {
        CacheKey {
            fingerprint: fp.hash,
            config,
            stats_epoch,
            index_set: 0,
            overlay,
            dynamic: true,
        }
    }
}

/// What a cache entry holds.
#[derive(Clone, Debug)]
pub enum CachedBody {
    /// The winning plan and its estimated cost.
    Static {
        /// The winning physical plan.
        plan: PhysicalPlan,
        /// Its estimated cost.
        cost: Cost,
    },
    /// A whole per-index-subset plan family; callers select at fetch time.
    Dynamic(DynamicPlan),
}

/// A self-contained cached entry: the environment the plan's interned ids
/// refer to, the full structural key (collision guard), and the plan(s).
#[derive(Clone, Debug)]
pub struct CachedPlan {
    /// Full canonical structural key — compared on every hash hit.
    pub structural: String,
    /// The query environment captured at optimization time. The plan's
    /// `PredId`/`VarId` values index into *this* env, not the caller's.
    pub env: QueryEnv,
    /// The query's result variables, as ids into `env` — rendering must
    /// project these (different plans bind different auxiliary vars).
    pub result_vars: VarSet,
    /// The cached plan or plan family.
    pub body: CachedBody,
}

impl CachedPlan {
    /// Approximate resident bytes of this entry: the structural key, the
    /// captured environment (scope + predicate arenas), and every plan
    /// node. The constants are coarse — the point is that a cache full
    /// of `QueryEnv` clones has byte-proportional growth the entry-count
    /// LRU alone cannot see, so the byte cap must track the same shape.
    pub fn approx_bytes(&self) -> usize {
        const BASE: usize = 256;
        const SCOPE_BYTES: usize = 128;
        const PRED_BYTES: usize = 192;
        const NODE_BYTES: usize = 160;
        let plan_nodes: usize = match &self.body {
            CachedBody::Static { plan, .. } => plan.iter_ops().len(),
            CachedBody::Dynamic(family) => family
                .alternatives
                .iter()
                .map(|a| a.plan.iter_ops().len())
                .sum(),
        };
        BASE + self.structural.len()
            + self.env.scopes.len() * SCOPE_BYTES
            + self.env.preds.len() * PRED_BYTES
            + plan_nodes * NODE_BYTES
    }
}

/// Counters exposed by [`PlanCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned an entry.
    pub hits: u64,
    /// Lookups that found nothing valid.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
    /// Inserts refused because the entry's statistics epoch was already
    /// superseded when the optimizer finished (the optimize-during-
    /// epoch-bump race).
    pub stale_rejects: u64,
    /// Inserts refused because the static verifier found the plan
    /// malformed — a corrupt plan is never cached, so never served.
    pub verify_rejects: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate resident bytes across all entries (see
    /// [`CachedPlan::approx_bytes`]).
    pub bytes: usize,
}

impl CacheStats {
    /// Hits over total lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Shard {
    map: HashMap<CacheKey, Slot>,
    capacity: usize,
    /// Approximate resident bytes in this shard.
    bytes: usize,
    /// Byte budget for this shard; eviction runs until under it.
    max_bytes: usize,
}

struct Slot {
    entry: Arc<CachedPlan>,
    last_used: u64,
    /// `entry.approx_bytes()`, captured at insert so eviction accounting
    /// never recomputes.
    bytes: usize,
}

/// The sharded LRU plan cache. Cheap to share: clone an `Arc<PlanCache>`.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Highest statistics epoch this cache has ever observed (from lookup
    /// keys and [`PlanCache::note_epoch`]). Inserts under an older epoch
    /// are refused: such entries could only ever miss, and would pin a
    /// stale environment in the LRU until displaced.
    latest_epoch: AtomicU64,
    stale_rejects: AtomicU64,
    verify_rejects: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(1024, 8)
    }
}

impl PlanCache {
    /// Default byte budget for [`PlanCache::new`]: generous enough that
    /// entry-count LRU remains the binding limit for typical workloads,
    /// tight enough that a cache of pathological mega-queries cannot grow
    /// without bound.
    pub const DEFAULT_BYTE_CAP: usize = 16 << 20;

    /// A cache holding at most `capacity` entries across `shards` shards
    /// (both floored at 1; per-shard capacity is the ceiling division),
    /// with the default [`PlanCache::DEFAULT_BYTE_CAP`] byte budget.
    pub fn new(capacity: usize, shards: usize) -> Self {
        PlanCache::with_byte_cap(capacity, shards, PlanCache::DEFAULT_BYTE_CAP)
    }

    /// As [`PlanCache::new`], but with an explicit resident-byte budget
    /// (floored at 1 byte, split evenly across shards). Whichever limit
    /// binds first — entry count or approximate bytes — drives LRU
    /// eviction.
    pub fn with_byte_cap(capacity: usize, shards: usize, max_bytes: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        let bytes_per_shard = max_bytes.max(1).div_ceil(shards);
        PlanCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        capacity: per_shard,
                        bytes: 0,
                        max_bytes: bytes_per_shard,
                    })
                })
                .collect(),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            latest_epoch: AtomicU64::new(0),
            stale_rejects: AtomicU64::new(0),
            verify_rejects: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        // Fingerprints are FNV-hashed already; low bits are well mixed.
        &self.shards[(key.fingerprint as usize) % self.shards.len()]
    }

    /// Looks up an entry. `structural` is the full canonical key of the
    /// query being looked up; a hash match with a different structural key
    /// is a collision and reported as a miss.
    pub fn get(&self, key: &CacheKey, structural: &str) -> Option<Arc<CachedPlan>> {
        self.latest_epoch
            .fetch_max(key.stats_epoch, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().unwrap();
        let found = match shard.map.get_mut(key) {
            Some(slot) if slot.entry.structural == structural => {
                slot.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.entry))
            }
            _ => None,
        };
        drop(shard);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Advances the cache's view of the catalog's statistics epoch. Call
    /// with the *current* epoch just before [`PlanCache::insert`]: if
    /// statistics were recollected while the optimizer ran, the insert is
    /// refused instead of caching a plan that can only ever miss.
    pub fn note_epoch(&self, epoch: u64) {
        self.latest_epoch.fetch_max(epoch, Ordering::Relaxed);
    }

    /// Inserts (or replaces) an entry, evicting least-recently-used slots
    /// of the shard while it is over its entry or byte limit. Returns
    /// `false` (and counts the rejection) when the entry is refused:
    ///
    /// * its `stats_epoch` is older than the newest epoch the cache has
    ///   seen — the optimize-during-epoch-bump race — or
    /// * the static verifier ([`oodb_verify`]) finds the plan malformed,
    ///   so a corrupt plan can never be served.
    pub fn insert(&self, key: CacheKey, entry: Arc<CachedPlan>) -> bool {
        let seen = self
            .latest_epoch
            .fetch_max(key.stats_epoch, Ordering::Relaxed);
        if key.stats_epoch < seen {
            self.stale_rejects.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if !verify_entry(&entry) {
            self.verify_rejects.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let entry_bytes = entry.approx_bytes();
        let mut shard = self.shard(&key).lock().unwrap();
        // Replacement first, so the old entry's bytes don't count against
        // the budget its successor is admitted under.
        if let Some(old) = shard.map.remove(&key) {
            shard.bytes -= old.bytes;
        }
        // Evict LRU victims until both limits admit the new entry. A
        // single entry larger than the whole shard budget still lands
        // (floor of one resident entry, matching the entry-count floor).
        while !shard.map.is_empty()
            && (shard.map.len() >= shard.capacity || shard.bytes + entry_bytes > shard.max_bytes)
        {
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k)
            {
                if let Some(gone) = shard.map.remove(&victim) {
                    shard.bytes -= gone.bytes;
                }
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.bytes += entry_bytes;
        shard.map.insert(
            key,
            Slot {
                entry,
                last_used: tick,
                bytes: entry_bytes,
            },
        );
        true
    }

    /// Removes one entry — the feedback ladder's *suspect eviction*: a
    /// plan whose estimates drifted past the threshold must stop being
    /// served immediately, not age out of the LRU. Returns `true` when an
    /// entry was resident under the key.
    pub fn remove(&self, key: &CacheKey) -> bool {
        let mut shard = self.shard(key).lock().unwrap();
        if let Some(gone) = shard.map.remove(key) {
            shard.bytes -= gone.bytes;
            true
        } else {
            false
        }
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            shard.map.clear();
            shard.bytes = 0;
        }
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes across all shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().bytes).sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_rejects: self.stale_rejects.load(Ordering::Relaxed),
            verify_rejects: self.verify_rejects.load(Ordering::Relaxed),
            entries: self.len(),
            bytes: self.resident_bytes(),
        }
    }
}

/// Static verification of an entry against its own captured environment.
/// Root requirements are unknown at this layer (they live with the
/// caller's goal), so only internal consistency is checked: shape, scoping,
/// link types, enforcer placement, and cost sanity.
fn verify_entry(entry: &CachedPlan) -> bool {
    let clean = |plan: &PhysicalPlan| {
        oodb_verify::verify_physical(&entry.env, plan, oodb_algebra::PhysProps::NONE).is_empty()
    };
    match &entry.body {
        CachedBody::Static { plan, .. } => clean(plan),
        CachedBody::Dynamic(family) => family.alternatives.iter().all(|a| clean(&a.plan)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_object::paper::paper_model;

    /// A minimal *well-formed* entry: a bare file scan of Cities. Inserts
    /// are verified, so test entries must pass the linter.
    fn dummy_entry(structural: &str) -> Arc<CachedPlan> {
        let m = paper_model();
        let cities = m.ids.cities;
        let card = m.catalog.collection(cities).cardinality as f64;
        let mut qb = oodb_algebra::QueryBuilder::new(m.schema, m.catalog);
        let (_, c) = qb.get(cities, "c");
        Arc::new(CachedPlan {
            structural: structural.to_string(),
            env: qb.into_env(),
            result_vars: VarSet::single(c),
            body: CachedBody::Static {
                plan: PhysicalPlan {
                    op: oodb_algebra::PhysicalOp::FileScan {
                        coll: cities,
                        var: c,
                    },
                    children: vec![],
                    est: oodb_algebra::PlanEst {
                        out_card: card,
                        io_s: 0.1,
                        cpu_s: 0.01,
                    },
                },
                cost: Cost::ZERO,
            },
        })
    }

    /// A malformed entry: a filter with no inputs whose predicate id
    /// dangles into an empty arena — the shape a rule bug could produce.
    fn corrupt_entry(structural: &str) -> Arc<CachedPlan> {
        let m = paper_model();
        let qb = oodb_algebra::QueryBuilder::new(m.schema, m.catalog);
        Arc::new(CachedPlan {
            structural: structural.to_string(),
            env: qb.into_env(),
            result_vars: VarSet::default(),
            body: CachedBody::Static {
                plan: PhysicalPlan {
                    op: oodb_algebra::PhysicalOp::Filter {
                        pred: oodb_algebra::PredId::from_index(0),
                    },
                    children: vec![],
                    est: oodb_algebra::PlanEst {
                        out_card: 0.0,
                        io_s: 0.0,
                        cpu_s: 0.0,
                    },
                },
                cost: Cost::ZERO,
            },
        })
    }

    fn key(fp: u64, epoch: u64) -> CacheKey {
        CacheKey {
            fingerprint: fp,
            config: 1,
            stats_epoch: epoch,
            index_set: 2,
            overlay: 0,
            dynamic: false,
        }
    }

    #[test]
    fn hit_miss_and_structural_guard() {
        let cache = PlanCache::new(16, 4);
        let k = key(42, 0);
        assert!(cache.get(&k, "q").is_none());
        cache.insert(k, dummy_entry("q"));
        assert!(cache.get(&k, "q").is_some());
        // Same hash, different structure: collision → miss, never a plan.
        assert!(cache.get(&k, "другой").is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
    }

    #[test]
    fn overlay_fingerprint_partitions_the_key_space() {
        // A plan optimized under a feedback overlay must never be served
        // to a lookup without it (or with a different one), and clearing
        // feedback (overlay back to 0) must not resurrect the overlayed
        // plan — same fingerprint, config, epoch, and index set.
        let cache = PlanCache::new(16, 4);
        let overlayed = CacheKey {
            overlay: 0xfeed,
            ..key(21, 3)
        };
        cache.insert(overlayed, dummy_entry("q"));
        assert!(cache.get(&overlayed, "q").is_some());
        assert!(
            cache.get(&key(21, 3), "q").is_none(),
            "catalog-only lookup must miss the overlayed entry"
        );
        assert!(
            cache
                .get(
                    &CacheKey {
                        overlay: 0xbeef,
                        ..key(21, 3)
                    },
                    "q"
                )
                .is_none(),
            "a different overlay must miss too"
        );
        // Both worlds can be resident side by side.
        cache.insert(key(21, 3), dummy_entry("q"));
        assert!(cache.get(&key(21, 3), "q").is_some());
        assert!(cache.get(&overlayed, "q").is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn remove_evicts_one_entry_immediately() {
        let cache = PlanCache::new(16, 4);
        cache.insert(key(5, 0), dummy_entry("a"));
        cache.insert(key(6, 0), dummy_entry("b"));
        let bytes_before = cache.resident_bytes();
        assert!(cache.remove(&key(5, 0)));
        assert!(!cache.remove(&key(5, 0)), "second remove finds nothing");
        assert!(cache.get(&key(5, 0), "a").is_none());
        assert!(cache.get(&key(6, 0), "b").is_some());
        assert!(cache.resident_bytes() < bytes_before);
    }

    #[test]
    fn epoch_in_key_misses_after_bump() {
        let cache = PlanCache::new(16, 4);
        cache.insert(key(7, 0), dummy_entry("q"));
        assert!(cache.get(&key(7, 0), "q").is_some());
        assert!(cache.get(&key(7, 1), "q").is_none(), "new epoch must miss");
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = PlanCache::new(2, 1); // 2 slots, one shard
        cache.insert(key(1, 0), dummy_entry("a"));
        cache.insert(key(2, 0), dummy_entry("b"));
        assert!(cache.get(&key(1, 0), "a").is_some()); // touch 1
        cache.insert(key(3, 0), dummy_entry("c")); // evicts 2
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&key(1, 0), "a").is_some());
        assert!(cache.get(&key(2, 0), "b").is_none());
        assert!(cache.get(&key(3, 0), "c").is_some());
    }

    #[test]
    fn stale_epoch_insert_is_rejected_and_counted() {
        let cache = PlanCache::new(16, 4);
        // A lookup under epoch 2 teaches the cache the current epoch…
        assert!(cache.get(&key(7, 2), "q").is_none());
        // …so an optimizer that started under epoch 1 (and finished after
        // the bump) may not insert its result.
        assert!(!cache.insert(key(7, 1), dummy_entry("q")));
        assert_eq!(cache.stats().stale_rejects, 1);
        assert!(cache.is_empty());
        // The current epoch is still insertable, as is a newer one.
        assert!(cache.insert(key(7, 2), dummy_entry("q")));
        assert!(cache.insert(key(8, 3), dummy_entry("r")));
        assert_eq!(cache.stats().entries, 2);
        // note_epoch advances the watermark without a lookup.
        cache.note_epoch(5);
        assert!(!cache.insert(key(9, 4), dummy_entry("s")));
        assert_eq!(cache.stats().stale_rejects, 2);
    }

    #[test]
    fn corrupt_plan_is_rejected_and_never_served() {
        let cache = PlanCache::new(16, 4);
        let k = key(11, 0);
        assert!(!cache.insert(k, corrupt_entry("bad")));
        assert_eq!(cache.stats().verify_rejects, 1);
        assert!(cache.get(&k, "bad").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn byte_cap_evicts_before_entry_cap() {
        let one = dummy_entry("a").approx_bytes();
        // Room for two entries by bytes, sixteen by count: bytes bind.
        let cache = PlanCache::with_byte_cap(16, 1, one * 2 + one / 2);
        cache.insert(key(1, 0), dummy_entry("a"));
        cache.insert(key(2, 0), dummy_entry("b"));
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.get(&key(2, 0), "b").is_some()); // touch 2
        cache.insert(key(3, 0), dummy_entry("c")); // over budget → evict LRU 1
        let s = cache.stats();
        assert_eq!((s.evictions, s.entries), (1, 2));
        assert!(s.bytes <= one * 2 + one / 2, "{} resident bytes", s.bytes);
        assert!(cache.get(&key(1, 0), "a").is_none());
        assert!(cache.get(&key(2, 0), "b").is_some());
        assert!(cache.get(&key(3, 0), "c").is_some());
    }

    #[test]
    fn oversized_entry_still_lands_alone() {
        // Budget below a single entry: the cache keeps a floor of one
        // resident entry rather than thrashing to empty.
        let cache = PlanCache::with_byte_cap(16, 1, 1);
        cache.insert(key(1, 0), dummy_entry("a"));
        cache.insert(key(2, 0), dummy_entry("b"));
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (1, 1));
        assert!(cache.get(&key(2, 0), "b").is_some());
    }

    #[test]
    fn byte_ledger_tracks_replace_and_clear() {
        let cache = PlanCache::new(16, 4);
        cache.insert(key(1, 0), dummy_entry("a"));
        let after_one = cache.resident_bytes();
        assert!(after_one > 0);
        // Replacing the same key must not double-count.
        cache.insert(key(1, 0), dummy_entry("a"));
        assert_eq!(cache.resident_bytes(), after_one);
        // A longer structural key weighs more.
        cache.insert(key(1, 0), dummy_entry(&"long".repeat(64)));
        assert!(cache.resident_bytes() > after_one);
        cache.clear();
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = PlanCache::new(16, 4);
        cache.insert(key(1, 0), dummy_entry("a"));
        assert!(cache.get(&key(1, 0), "a").is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }
}
