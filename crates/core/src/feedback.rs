//! Execution-feedback accumulation and the re-optimization ladder's state.
//!
//! The optimizer's estimates come from catalog statistics that nothing
//! refreshes from observed behavior; PR 8's interval checks *detect* the
//! resulting drift (`oodb_actual_card_violations_total`) but nothing
//! consumed the signal. This module closes the loop:
//!
//! 1. **Observe.** Every execution reports its root row count
//!    ([`FeedbackStore::observe_root`]) — including the untraced hot
//!    path, so feedback is not silently disabled when profiling is off.
//!    Traced executions additionally walk the plan and its
//!    [`OpTrace`](oodb_telemetry::OpTrace) in lockstep
//!    ([`FeedbackStore::observe_trace`]) and attribute observed
//!    selectivities to individual predicates.
//! 2. **Suspect.** When a fingerprint's drift ratio
//!    ([`drift_ratio`]) exceeds the configured threshold (default
//!    [`DEFAULT_DRIFT_THRESHOLD`]), the entry is marked *suspect*. The
//!    service evicts the cached plan and auto-traces the next execution
//!    ([`FeedbackStore::wants_probe`]) to gather per-predicate actuals.
//! 3. **Re-optimize.** Once per-predicate overrides exist,
//!    [`FeedbackStore::overlay_for`] hands the service a
//!    [`StatsOverlay`] to re-optimize with. The overlay never mutates the
//!    catalog — epoch snapshots and the auditor's sound `[lo, hi]`
//!    intervals keep seeing the real statistics.
//!
//! Entries are keyed by canonical query fingerprint and pinned to the
//! stats epoch they were observed under; a statistics refresh retires
//! them ([`FeedbackStore::retire_older_than`]) because observations of
//! the old data distribution say nothing about the new one.

use oodb_algebra::{PhysicalOp, PhysicalPlan, QueryEnv, StatsOverlay};
use oodb_telemetry::OpTrace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Default drift threshold: estimates off by ≥ 10× in either direction
/// mark the plan suspect (the ratio the ROADMAP item names).
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 10.0;

/// Ceiling on reported drift ratios. A zero-row estimate against observed
/// rows is *maximal* drift, not infinity — the cap keeps every downstream
/// comparison and export finite.
pub const MAX_DRIFT: f64 = 1e12;

/// The error ratio between an estimated and an observed cardinality:
/// `max(est/actual, actual/est)`, clamped to `[1.0, MAX_DRIFT]` and
/// always finite.
///
/// Zero-row edge cases are part of the contract, not an afterthought:
/// an estimate of 0 (or a non-finite estimate) against observed rows is
/// maximal drift; 0 estimated and 0 observed is perfect agreement; both
/// sides are floored at one row so sub-row estimates (`1e-6` from the
/// cost model) cannot manufacture drift against an actual of 0 or 1.
pub fn drift_ratio(estimated: f64, actual: u64) -> f64 {
    if !estimated.is_finite() {
        return MAX_DRIFT;
    }
    if estimated <= 0.0 && actual > 0 {
        return MAX_DRIFT;
    }
    let e = estimated.max(1.0);
    let a = (actual as f64).max(1.0);
    (e / a).max(a / e).min(MAX_DRIFT)
}

/// What [`FeedbackStore::observe_root`] concluded about one execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Observation {
    /// Estimate and actual agree within the threshold.
    InBounds,
    /// This observation pushed the fingerprint over the drift threshold:
    /// the cached plan should be evicted and the next execution probed.
    NewlySuspect,
    /// The fingerprint was already suspect (or already carries
    /// overrides); no new action needed beyond what is in flight.
    StillSuspect,
}

/// Per-fingerprint accumulated feedback.
#[derive(Clone, Debug)]
struct FpEntry {
    /// Stats epoch the observations were made under.
    stats_epoch: u64,
    /// Executions observed.
    execs: u64,
    /// Most recent root estimate.
    last_est: f64,
    /// Most recent root actual.
    last_actual: u64,
    /// Worst drift ratio seen at this epoch.
    worst_drift: f64,
    /// Whether drift crossed the threshold.
    suspect: bool,
    /// Per-predicate observed selectivities from traced probes.
    overlay: Option<Arc<StatsOverlay>>,
    /// Executions that ran on a plan re-optimized under the overlay.
    corrected_execs: u64,
}

impl FpEntry {
    fn fresh(epoch: u64) -> Self {
        FpEntry {
            stats_epoch: epoch,
            execs: 0,
            last_est: 0.0,
            last_actual: 0,
            worst_drift: 1.0,
            suspect: false,
            overlay: None,
            corrected_execs: 0,
        }
    }
}

/// A read-only view of one fingerprint's feedback state, for the CLI and
/// the server's `/stats` endpoint.
#[derive(Clone, Debug)]
pub struct FeedbackEntry {
    /// Canonical fingerprint hash.
    pub fingerprint: u64,
    /// Stats epoch the observations belong to.
    pub stats_epoch: u64,
    /// Executions observed.
    pub execs: u64,
    /// Most recent root estimate.
    pub last_est: f64,
    /// Most recent root actual row count.
    pub last_actual: u64,
    /// Worst drift ratio seen.
    pub worst_drift: f64,
    /// Whether the fingerprint is currently suspect.
    pub suspect: bool,
    /// Number of per-predicate overrides recorded.
    pub overrides: usize,
    /// Executions that ran on an overlay-corrected plan.
    pub corrected_execs: u64,
}

/// Aggregate counters over the whole store.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FeedbackStats {
    /// Fingerprints with any observations.
    pub tracked: u64,
    /// Fingerprints currently suspect.
    pub suspect: u64,
    /// Fingerprints carrying selectivity overrides.
    pub overridden: u64,
    /// Total overrides across all fingerprints.
    pub overrides: u64,
    /// Worst drift ratio currently tracked.
    pub worst_drift: f64,
}

/// Sharded accumulator of actual-vs-estimated cardinalities per query
/// fingerprint. All methods are `&self` and safe to call from many worker
/// threads; shard mutexes are poison-recovering like the rest of the
/// service layer.
#[derive(Debug)]
pub struct FeedbackStore {
    shards: Vec<Mutex<HashMap<u64, FpEntry>>>,
    threshold: f64,
    /// High-water stats epoch; observations older than it are ignored so
    /// a slow executor cannot resurrect retired feedback.
    latest_epoch: AtomicU64,
    /// Kill switch: when off, the store observes nothing and hands out no
    /// overlays. Exists so benchmarks can measure the loop's overhead
    /// against a true baseline and operators can disable it in the field.
    enabled: AtomicBool,
}

impl Default for FeedbackStore {
    fn default() -> Self {
        Self::new(DEFAULT_DRIFT_THRESHOLD)
    }
}

impl FeedbackStore {
    /// Creates a store with the given drift threshold (ratios at or above
    /// it mark a fingerprint suspect). Thresholds below 1 are clamped.
    pub fn new(threshold: f64) -> Self {
        let threshold = if threshold.is_finite() {
            threshold.max(1.0)
        } else {
            DEFAULT_DRIFT_THRESHOLD
        };
        FeedbackStore {
            shards: (0..8).map(|_| Mutex::new(HashMap::new())).collect(),
            threshold,
            latest_epoch: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// The configured drift threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Turns the feedback loop on or off. Disabling does not drop already
    /// accumulated state; re-enabling resumes from it.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Whether the loop is currently observing and correcting.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    fn shard(&self, fp: u64) -> &Mutex<HashMap<u64, FpEntry>> {
        &self.shards[(fp as usize) % self.shards.len()]
    }

    fn lock(&self, fp: u64) -> std::sync::MutexGuard<'_, HashMap<u64, FpEntry>> {
        self.shard(fp)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Records the root-level actual row count of one execution — the
    /// cheap always-on sample that keeps feedback live on the untraced
    /// hot path. `corrected` marks executions of an overlay-re-optimized
    /// plan (their drift is tracked but does not re-trip the suspect
    /// ladder, which would loop forever on a genuinely skewed key).
    pub fn observe_root(
        &self,
        fp: u64,
        epoch: u64,
        estimated: f64,
        actual: u64,
        corrected: bool,
    ) -> Observation {
        if !self.is_enabled() {
            return Observation::InBounds;
        }
        if epoch < self.latest_epoch.fetch_max(epoch, Ordering::AcqRel) {
            return Observation::InBounds;
        }
        let mut shard = self.lock(fp);
        let e = shard.entry(fp).or_insert_with(|| FpEntry::fresh(epoch));
        if e.stats_epoch < epoch {
            *e = FpEntry::fresh(epoch);
        } else if e.stats_epoch > epoch {
            return Observation::InBounds;
        }
        e.execs += 1;
        e.last_est = estimated;
        e.last_actual = actual;
        let drift = drift_ratio(estimated, actual);
        e.worst_drift = e.worst_drift.max(drift);
        if corrected {
            e.corrected_execs += 1;
            return Observation::InBounds;
        }
        if drift < self.threshold {
            return Observation::InBounds;
        }
        if e.suspect || e.overlay.is_some() {
            Observation::StillSuspect
        } else {
            e.suspect = true;
            Observation::NewlySuspect
        }
    }

    /// Records per-predicate observed selectivities from a traced
    /// execution by walking the plan and its [`OpTrace`] in lockstep (the
    /// executor's trace tree mirrors the plan tree; plan children without
    /// a trace node — a pointer join's target scan — are skipped).
    /// Only suspect (or already-corrected) fingerprints record overrides;
    /// traces of in-bounds queries are diagnostics, not probes.
    /// Returns the number of overrides now recorded for the fingerprint.
    pub fn observe_trace(
        &self,
        fp: u64,
        epoch: u64,
        env: &QueryEnv,
        plan: &PhysicalPlan,
        trace: &OpTrace,
    ) -> usize {
        if !self.is_enabled() {
            return 0;
        }
        if epoch < self.latest_epoch.fetch_max(epoch, Ordering::AcqRel) {
            return 0;
        }
        let mut shard = self.lock(fp);
        let e = shard.entry(fp).or_insert_with(|| FpEntry::fresh(epoch));
        if e.stats_epoch < epoch {
            *e = FpEntry::fresh(epoch);
        } else if e.stats_epoch > epoch {
            return 0;
        }
        // Traces only act as probes for fingerprints the ladder already
        // flagged (or is keeping corrected). For an in-bounds query,
        // `EXPLAIN ANALYZE` is diagnostics — recording overrides would
        // re-key and evict a perfectly good cached plan.
        if !e.suspect && e.overlay.is_none() {
            return 0;
        }
        let mut overlay = StatsOverlay::new();
        collect_observed(env, plan, trace, &mut overlay);
        if !overlay.is_empty() {
            e.overlay = Some(Arc::new(overlay));
        }
        e.overlay.as_ref().map_or(0, |o| o.len())
    }

    /// The selectivity overlay to re-optimize a suspect fingerprint with,
    /// if per-predicate observations exist at this epoch.
    pub fn overlay_for(&self, fp: u64, epoch: u64) -> Option<Arc<StatsOverlay>> {
        if !self.is_enabled() {
            return None;
        }
        let shard = self.lock(fp);
        let e = shard.get(&fp)?;
        if e.stats_epoch != epoch {
            return None;
        }
        e.overlay.clone()
    }

    /// True when the next execution of this fingerprint should run traced
    /// even though the caller didn't ask for profiling: the plan is
    /// suspect and no per-predicate observations exist yet.
    pub fn wants_probe(&self, fp: u64) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let shard = self.lock(fp);
        shard
            .get(&fp)
            .is_some_and(|e| e.suspect && e.overlay.is_none())
    }

    /// Drops every entry observed under a stats epoch older than `epoch`
    /// — statistics were refreshed, so old-distribution feedback (and any
    /// suspect markers) no longer applies. Called by the service on every
    /// epoch-bumping mutation.
    pub fn retire_older_than(&self, epoch: u64) {
        self.latest_epoch.fetch_max(epoch, Ordering::AcqRel);
        for shard in &self.shards {
            let mut s = shard.lock().unwrap_or_else(PoisonError::into_inner);
            s.retain(|_, e| e.stats_epoch >= epoch);
        }
    }

    /// Forgets all accumulated feedback (CLI `\feedback clear`).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(PoisonError::into_inner).clear();
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> FeedbackStats {
        let mut out = FeedbackStats {
            worst_drift: 1.0,
            ..FeedbackStats::default()
        };
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for e in s.values() {
                out.tracked += 1;
                if e.suspect {
                    out.suspect += 1;
                }
                if let Some(o) = &e.overlay {
                    out.overridden += 1;
                    out.overrides += o.len() as u64;
                }
                out.worst_drift = out.worst_drift.max(e.worst_drift);
            }
        }
        out
    }

    /// A snapshot of every tracked fingerprint, worst drift first.
    pub fn snapshot(&self) -> Vec<FeedbackEntry> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for (fp, e) in s.iter() {
                out.push(FeedbackEntry {
                    fingerprint: *fp,
                    stats_epoch: e.stats_epoch,
                    execs: e.execs,
                    last_est: e.last_est,
                    last_actual: e.last_actual,
                    worst_drift: e.worst_drift,
                    suspect: e.suspect,
                    overrides: e.overlay.as_ref().map_or(0, |o| o.len()),
                    corrected_execs: e.corrected_execs,
                });
            }
        }
        out.sort_by(|a, b| {
            b.worst_drift
                .total_cmp(&a.worst_drift)
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        out
    }
}

/// Walks plan and trace in lockstep, attributing observed selectivities
/// to the predicates of filters, index scans, and joins. Mirrors
/// `oodb_verify`'s actual-cardinality walk: children are zipped
/// positionally and plan children beyond the trace's children (operators
/// the executor never materialized as separate trace nodes) contribute
/// nothing.
fn collect_observed(
    env: &QueryEnv,
    plan: &PhysicalPlan,
    trace: &OpTrace,
    overlay: &mut StatsOverlay,
) {
    for (p, t) in plan.children.iter().zip(trace.children.iter()) {
        collect_observed(env, p, t, overlay);
    }
    let actual = trace.actual_rows as f64;
    let key_of = |pred| oodb_algebra::overlay::pred_key(env, env.preds.pred(pred));
    match &plan.op {
        PhysicalOp::Filter { pred } => {
            // Observed fraction of the input that survived the filter.
            if let Some(t) = trace.children.first() {
                if t.actual_rows > 0 {
                    overlay.set(key_of(*pred), actual / t.actual_rows as f64);
                }
            }
        }
        PhysicalOp::IndexScan { index, pred, .. } => {
            if env.preds.pred(*pred).terms.is_empty() {
                return;
            }
            let coll = env.catalog.index(*index).collection;
            let card = env.catalog.collection(coll).cardinality;
            if card > 0 {
                overlay.set(key_of(*pred), actual / card as f64);
            }
        }
        PhysicalOp::HybridHashJoin { pred } | PhysicalOp::MergeJoin { pred } => {
            // Observed selectivity relative to the cross product, the
            // same convention `join_card` consumes.
            if let (Some(l), Some(r)) = (trace.children.first(), trace.children.get(1)) {
                let cross = l.actual_rows as f64 * r.actual_rows as f64;
                if cross > 0.0 {
                    overlay.set(key_of(*pred), actual / cross);
                }
            }
        }
        // A pointer join's target side has no trace child (references are
        // resolved inline), so its cross product is unknowable here; its
        // reference-equality estimate is domain-driven, not
        // selectivity-driven, and is left to the catalog.
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_ratio_zero_row_contract() {
        // 0 estimated, >0 actual: maximal drift, not NaN/inf.
        assert_eq!(drift_ratio(0.0, 5), MAX_DRIFT);
        assert_eq!(drift_ratio(-1.0, 5), MAX_DRIFT);
        assert_eq!(drift_ratio(f64::NAN, 0), MAX_DRIFT);
        assert_eq!(drift_ratio(f64::INFINITY, 10), MAX_DRIFT);
        // Agreement (including the all-zero case) is ratio 1.
        assert_eq!(drift_ratio(0.0, 0), 1.0);
        assert_eq!(drift_ratio(1e-6, 0), 1.0);
        assert_eq!(drift_ratio(7.0, 7), 1.0);
        // Symmetric 10x drift either way.
        assert_eq!(drift_ratio(10.0, 100), 10.0);
        assert_eq!(drift_ratio(100.0, 10), 10.0);
        // Huge actuals stay finite and capped.
        assert_eq!(drift_ratio(1.0, u64::MAX), MAX_DRIFT);
    }

    #[test]
    fn suspect_ladder_fires_once_per_epoch() {
        let fb = FeedbackStore::new(10.0);
        assert_eq!(
            fb.observe_root(1, 0, 100.0, 120, false),
            Observation::InBounds
        );
        assert!(!fb.wants_probe(1));
        assert_eq!(
            fb.observe_root(1, 0, 100.0, 5000, false),
            Observation::NewlySuspect
        );
        assert!(fb.wants_probe(1));
        assert_eq!(
            fb.observe_root(1, 0, 100.0, 5000, false),
            Observation::StillSuspect
        );
        // A stats refresh retires the entry: no stale suspect marker.
        fb.retire_older_than(1);
        assert!(!fb.wants_probe(1));
        assert_eq!(fb.stats().tracked, 0);
        // Fresh observations at the new epoch start clean.
        assert_eq!(
            fb.observe_root(1, 1, 100.0, 5000, false),
            Observation::NewlySuspect
        );
    }

    #[test]
    fn stale_epoch_observations_are_ignored() {
        let fb = FeedbackStore::default();
        assert_eq!(
            fb.observe_root(9, 5, 1.0, 1000, false),
            Observation::NewlySuspect
        );
        // An old-epoch straggler must not resurrect or mutate anything.
        assert_eq!(
            fb.observe_root(9, 4, 1.0, 1000, false),
            Observation::InBounds
        );
        let snap = fb.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].stats_epoch, 5);
        assert_eq!(snap[0].execs, 1);
    }

    #[test]
    fn kill_switch_silences_the_store_without_dropping_state() {
        let fb = FeedbackStore::new(10.0);
        assert_eq!(
            fb.observe_root(4, 0, 1.0, 500, false),
            Observation::NewlySuspect
        );
        fb.set_enabled(false);
        assert!(!fb.is_enabled());
        assert_eq!(
            fb.observe_root(4, 0, 1.0, 500, false),
            Observation::InBounds
        );
        assert!(!fb.wants_probe(4));
        assert!(fb.overlay_for(4, 0).is_none());
        // State survives: re-enabling resumes the ladder where it was.
        fb.set_enabled(true);
        assert!(fb.wants_probe(4));
        assert_eq!(fb.snapshot()[0].execs, 1);
    }

    #[test]
    fn corrected_executions_do_not_retrip_the_ladder() {
        let fb = FeedbackStore::new(10.0);
        assert_eq!(
            fb.observe_root(3, 0, 1.0, 500, false),
            Observation::NewlySuspect
        );
        // Post-re-optimization runs carry `corrected`; even if the better
        // plan still shows drift vs its estimate, the ladder stays quiet.
        assert_eq!(fb.observe_root(3, 0, 1.0, 500, true), Observation::InBounds);
        assert_eq!(fb.snapshot()[0].corrected_execs, 1);
    }
}
