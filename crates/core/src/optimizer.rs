//! The top-level optimizer driver.
//!
//! [`OpenOodb`] takes a simplified logical plan, seeds the Volcano memo,
//! runs exhaustive exploration plus goal-directed search, and returns an
//! annotated [`PhysicalPlan`] with search statistics.

use crate::config::OptimizerConfig;
use crate::cost::{Cost, CostParams};
use crate::model::OodbModel;
use crate::rules::rule_set;
use oodb_algebra::{
    LogicalPlan, LogicalProps, PhysProps, PhysicalOp, PhysicalPlan, PlanEst, QueryEnv, VarSet,
};
use volcano::{GroupId, Memo, Optimizer, PlanNode, RuleSet, SearchConfig, SearchStats};

/// Result of one optimization run.
#[derive(Clone, Debug)]
pub struct OptimizeOutcome {
    /// The winning plan, annotated with per-node cardinality and cost
    /// estimates.
    pub plan: PhysicalPlan,
    /// Total estimated execution cost.
    pub cost: Cost,
    /// Search statistics (for the paper's optimization-effort columns).
    pub stats: SearchStats,
    /// Static-verifier findings on the winning plan (and, when
    /// [`OptimizerConfig::verify_search`] is set, on every logical
    /// expression left in the memo). Empty on a sound run; never a panic.
    pub diagnostics: Vec<oodb_verify::Diagnostic>,
}

/// Outcome of a deadline-bounded optimization ([`OpenOodb::optimize_within`]).
#[derive(Clone, Debug)]
pub enum BoundedOutcome {
    /// The search finished (possibly just under the wire) with a winner.
    /// Boxed: the outcome (plan + stats + diagnostics) dwarfs the other
    /// variants, and this enum rides in return position.
    Complete(Box<OptimizeOutcome>),
    /// The deadline expired before a winner was found; the caller should
    /// degrade (greedy fallback) rather than report infeasibility.
    DeadlineExpired,
    /// No feasible plan exists under the current rule configuration —
    /// a real infeasibility, not a timeout.
    Infeasible,
}

/// The Open OODB optimizer: environment + parameters + configuration.
pub struct OpenOodb<'e> {
    pub(crate) model: OodbModel<'e>,
    pub(crate) rules: RuleSet<OodbModel<'e>>,
}

impl<'e> OpenOodb<'e> {
    /// Builds the optimizer for a query environment.
    pub fn new(env: &'e QueryEnv, params: CostParams, config: OptimizerConfig) -> Self {
        let rules = rule_set(&config);
        OpenOodb {
            model: OodbModel::new(env, params, config),
            rules,
        }
    }

    /// Builds with default device parameters.
    pub fn with_config(env: &'e QueryEnv, config: OptimizerConfig) -> Self {
        Self::new(env, CostParams::default(), config)
    }

    /// Builds with a caller-supplied rule set — the extensibility hook:
    /// start from [`crate::rules::rule_set`] and push additional
    /// transformation rules, implementation rules, or enforcers ("a
    /// powerful research workbench on which to try new ideas").
    pub fn with_rule_set(
        env: &'e QueryEnv,
        params: CostParams,
        config: OptimizerConfig,
        rules: RuleSet<OodbModel<'e>>,
    ) -> Self {
        OpenOodb {
            model: OodbModel::new(env, params, config),
            rules,
        }
    }

    /// Attaches an observed-selectivity overlay from the feedback loop:
    /// every estimate for an overridden predicate comes from the observed
    /// fraction instead of catalog statistics. The catalog (and the epoch
    /// snapshot it came from) is never mutated.
    pub fn with_overlay(mut self, overlay: std::sync::Arc<oodb_algebra::StatsOverlay>) -> Self {
        self.model = self.model.with_overlay(overlay);
        self
    }

    /// The model (for estimate inspection).
    pub fn model(&self) -> &OodbModel<'e> {
        &self.model
    }

    /// Optimizes a logical plan. `result_vars` is the set of variables the
    /// caller needs delivered in memory at the root (the query's result
    /// set; pass `VarSet::EMPTY` for queries whose root projection decides
    /// for itself).
    ///
    /// Returns `None` when no feasible plan exists (never the case with
    /// the full rule set).
    pub fn optimize(&self, plan: &LogicalPlan, result_vars: VarSet) -> Option<OptimizeOutcome> {
        self.optimize_ordered(plan, result_vars, None)
    }

    /// Like [`OpenOodb::optimize`], with an optional required result order
    /// (the sort-order physical property extension). The winning plan
    /// delivers tuples ordered by the given attribute — via an ordered
    /// index sweep, order-preserving operators, or an explicit sort
    /// enforcer, whichever costs least.
    pub fn optimize_ordered(
        &self,
        plan: &LogicalPlan,
        result_vars: VarSet,
        order: Option<oodb_algebra::SortSpec>,
    ) -> Option<OptimizeOutcome> {
        match self.optimize_within(plan, result_vars, order, None) {
            BoundedOutcome::Complete(out) => Some(*out),
            BoundedOutcome::DeadlineExpired | BoundedOutcome::Infeasible => None,
        }
    }

    /// Like [`OpenOodb::optimize_ordered`], bounded by an absolute
    /// deadline. The Volcano search checks the deadline at sweep and goal
    /// boundaries and never memoizes past expiry, so a plan that *is*
    /// returned was assembled only from fully-solved goals. Distinguishes
    /// timeout from genuine infeasibility so callers can degrade to the
    /// greedy baseline instead of failing.
    pub fn optimize_within(
        &self,
        plan: &LogicalPlan,
        result_vars: VarSet,
        order: Option<oodb_algebra::SortSpec>,
        deadline: Option<std::time::Instant>,
    ) -> BoundedOutcome {
        let search = SearchConfig {
            prune: self.model.config.prune,
            deadline,
            ..Default::default()
        };
        let mut opt = Optimizer::new(&self.model, &self.rules, search);
        let root = seed(&mut opt.memo, &self.model, plan);
        let props = PhysProps {
            in_memory: self.model.objify(result_vars),
            order,
        };
        let Some(node) = opt.run(root, props) else {
            return if opt.stats.deadline_hit {
                BoundedOutcome::DeadlineExpired
            } else {
                BoundedOutcome::Infeasible
            };
        };
        let cost = node.total_cost();
        let plan = merge_assemblies(self.annotate(&node));
        let mut diagnostics = oodb_verify::verify_physical(self.model.env, &plan, props);
        if self.model.config.verify_search {
            diagnostics.extend(verify_search_space(&opt.memo, self.model.env));
        }
        BoundedOutcome::Complete(Box::new(OptimizeOutcome {
            plan,
            cost,
            stats: opt.stats,
            diagnostics,
        }))
    }

    /// Like [`OpenOodb::optimize`], additionally returning a rendered
    /// goal-level search trace — the live version of the paper's Figure 11
    /// "search state" view. Each line shows the goal's required physical
    /// properties against the logical expression being implemented, and
    /// which rule or enforcer won it.
    pub fn optimize_traced(
        &self,
        plan: &LogicalPlan,
        result_vars: VarSet,
    ) -> Option<(OptimizeOutcome, Vec<String>)> {
        let search = SearchConfig {
            prune: self.model.config.prune,
            trace: true,
            ..Default::default()
        };
        let mut opt = Optimizer::new(&self.model, &self.rules, search);
        let root = seed(&mut opt.memo, &self.model, plan);
        let props = PhysProps::in_memory(self.model.objify(result_vars));
        let node = opt.run(root, props)?;
        let cost = node.total_cost();
        let env = self.model.env;
        let render_props = |p: &PhysProps| -> String {
            let vars: Vec<String> = p
                .in_memory
                .iter()
                .map(|v| env.scopes.var(v).label.clone())
                .collect();
            if vars.is_empty() {
                "{}".to_string()
            } else {
                format!("{{{}}} in memory", vars.join(", "))
            }
        };
        let lines = opt
            .trace
            .iter()
            .map(|ev| match ev {
                volcano::TraceEvent::GoalOpened {
                    group,
                    props,
                    depth,
                } => {
                    let anchor = opt.memo.group_exprs(*group)[0];
                    format!(
                        "{}goal: {} requiring {}",
                        "  ".repeat(*depth),
                        oodb_algebra::display::render_logical_op(env, &opt.memo.expr(anchor).op),
                        render_props(props),
                    )
                }
                volcano::TraceEvent::GoalSolved {
                    depth,
                    winner,
                    cost,
                    ..
                } => match (winner, cost) {
                    (Some(rule), Some(c)) => {
                        format!("{}  -> won by {rule} ({c:.3} s)", "  ".repeat(*depth))
                    }
                    _ => format!("{}  -> infeasible", "  ".repeat(*depth)),
                },
            })
            .collect();
        let plan = merge_assemblies(self.annotate(&node));
        let mut diagnostics = oodb_verify::verify_physical(self.model.env, &plan, props);
        if self.model.config.verify_search {
            diagnostics.extend(verify_search_space(&opt.memo, self.model.env));
        }
        Some((
            OptimizeOutcome {
                plan,
                cost,
                stats: opt.stats,
                diagnostics,
            },
            lines,
        ))
    }

    /// Explores the memo without optimizing and returns every logical
    /// alternative of the root group as a tree (children anchored at each
    /// group's first expression — the original formulation). Used by the
    /// figure reproductions to show what the transformation rules
    /// generated (e.g. the Mat→Join form of Figure 4).
    pub fn explore_alternatives(&self, plan: &LogicalPlan) -> (Vec<LogicalPlan>, SearchStats) {
        let search = SearchConfig {
            prune: self.model.config.prune,
            ..Default::default()
        };
        let mut opt = Optimizer::new(&self.model, &self.rules, search);
        let root = seed(&mut opt.memo, &self.model, plan);
        opt.explore_all();
        let memo = &opt.memo;
        let alts = memo
            .group_exprs(root)
            .into_iter()
            .map(|e| extract_anchored(memo, e))
            .collect();
        (alts, opt.stats)
    }

    /// Converts a search-engine plan into an annotated [`PhysicalPlan`],
    /// recomputing per-node cardinalities through the shared estimator.
    pub(crate) fn annotate(&self, node: &PlanNode<OodbModel<'e>>) -> PhysicalPlan {
        let (plan, _) = self.annotate_rec(node);
        plan
    }

    fn annotate_rec(&self, node: &PlanNode<OodbModel<'e>>) -> (PhysicalPlan, LogicalProps) {
        let mut children = Vec::with_capacity(node.children.len());
        let mut input_props = Vec::with_capacity(node.children.len());
        for c in &node.children {
            let (p, lp) = self.annotate_rec(c);
            children.push(p);
            input_props.push(lp);
        }
        let (props, cost) = self.model.phys_estimate(&node.op, &input_props);
        (
            PhysicalPlan {
                op: node.op.clone(),
                children,
                est: PlanEst {
                    out_card: props.card,
                    io_s: cost.io_s,
                    cpu_s: cost.cpu_s,
                },
            },
            props,
        )
    }
}

/// Lints every live logical expression in a searched memo — the
/// `verify_search` debug mode. Each expression is extracted as a tree
/// (children anchored at each group's first expression, which exploration
/// has already linted transitively) and run through the well-formedness
/// linter, so an unsound transformation rule is caught even when its
/// rewrite loses costing and never becomes the winner.
pub fn verify_search_space<'e>(
    memo: &Memo<OodbModel<'e>>,
    env: &QueryEnv,
) -> Vec<oodb_verify::Diagnostic> {
    let mut out = Vec::new();
    for e in memo.live_exprs() {
        let tree = extract_anchored(memo, e);
        out.extend(oodb_verify::lint_logical(env, &tree));
    }
    out
}

/// Reconstructs a logical tree from a memo expression, descending into
/// each child group's first (anchor) expression. Exposed for the
/// rule-soundness harness, which replays individual rewrites as trees.
pub fn extract_anchored<'e>(memo: &Memo<OodbModel<'e>>, e: volcano::ExprId) -> LogicalPlan {
    let expr = memo.expr(e);
    LogicalPlan {
        op: expr.op.clone(),
        children: expr
            .children
            .iter()
            .map(|&c| {
                let anchor = memo.group_exprs(c)[0];
                extract_anchored(memo, anchor)
            })
            .collect(),
    }
}

/// Seeds the memo with a logical plan tree, returning the root group.
pub fn seed<'e>(
    memo: &mut Memo<OodbModel<'e>>,
    model: &OodbModel<'e>,
    plan: &LogicalPlan,
) -> GroupId {
    let children: Vec<GroupId> = plan.children.iter().map(|c| seed(memo, model, c)).collect();
    memo.insert(model, plan.op.clone(), children).0
}

/// Collapses chains of adjacent single-target assemblies into one
/// multi-target assembly operator, matching the paper's figure notation
/// ("Assembly e.dept, e.dept.plant, e.job"). Costs are summed; semantics
/// and totals are unchanged.
pub fn merge_assemblies(plan: PhysicalPlan) -> PhysicalPlan {
    let mut node = PhysicalPlan {
        op: plan.op,
        children: plan.children.into_iter().map(merge_assemblies).collect(),
        est: plan.est,
    };
    if let PhysicalOp::Assembly { targets, window } = &node.op {
        if node.children.len() == 1 {
            if let PhysicalOp::Assembly {
                targets: inner_targets,
                window: inner_window,
            } = &node.children[0].op
            {
                if window == inner_window {
                    // Inner materializes first: its targets lead.
                    let mut merged = inner_targets.clone();
                    merged.extend(targets.iter().copied());
                    let inner = node.children.remove(0);
                    let est = PlanEst {
                        out_card: node.est.out_card,
                        io_s: node.est.io_s + inner.est.io_s,
                        cpu_s: node.est.cpu_s + inner.est.cpu_s,
                    };
                    node = PhysicalPlan {
                        op: PhysicalOp::Assembly {
                            targets: merged,
                            window: *window,
                        },
                        children: inner.children,
                        est,
                    };
                }
            }
        }
    }
    node
}

/// Convenience: the total estimated cost of an already-annotated plan.
pub fn plan_cost(plan: &PhysicalPlan) -> Cost {
    Cost::new(plan.total_io_s(), plan.total_cpu_s())
}

/// The degradation path taken when the cost-based search runs out of
/// deadline: the ObjectStore-style greedy plan, annotated through the same
/// estimator and linted by the static verifier so a degraded answer is
/// still a *checked* answer. Returns `None` for shapes outside the greedy
/// strategy's repertoire (explicit joins, set operators).
pub fn greedy_fallback(
    env: &QueryEnv,
    params: CostParams,
    plan: &LogicalPlan,
    result_vars: VarSet,
) -> Option<(PhysicalPlan, Cost, Vec<oodb_verify::Diagnostic>)> {
    let phys = crate::greedy::greedy_plan(env, params, plan)?;
    let cost = plan_cost(&phys);
    let model = OodbModel::new(env, params, OptimizerConfig::default());
    let props = PhysProps::in_memory(model.objify(result_vars));
    let diagnostics = oodb_verify::verify_physical(env, &phys, props);
    Some((phys, cost, diagnostics))
}

/// (Re)annotates a hand-built physical plan bottom-up through the shared
/// estimator — used by the greedy baseline and by tests comparing
/// hand-written plans against optimizer output.
pub fn annotate_physical(
    model: &OodbModel<'_>,
    plan: &PhysicalPlan,
) -> (PhysicalPlan, LogicalProps) {
    let mut children = Vec::with_capacity(plan.children.len());
    let mut input_props = Vec::with_capacity(plan.children.len());
    for c in &plan.children {
        let (p, lp) = annotate_physical(model, c);
        children.push(p);
        input_props.push(lp);
    }
    let (props, cost) = model.phys_estimate(&plan.op, &input_props);
    (
        PhysicalPlan {
            op: plan.op.clone(),
            children,
            est: PlanEst {
                out_card: props.card,
                io_s: cost.io_s,
                cpu_s: cost.cpu_s,
            },
        },
        props,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_algebra::{PhysicalOp, QueryBuilder};
    use oodb_object::paper::paper_model;
    use oodb_object::Value;

    /// Query 2 (Figure 8): with the collapse rule, the whole query becomes
    /// one index scan; its estimated cost is ~0.08 s.
    #[test]
    fn query2_collapses_to_index_scan() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (matd, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
        let pred = qb.eq_const(cm, m.ids.person_name, Value::str("Joe"));
        let q = qb.select(matd, pred);
        let env = qb.into_env();

        let opt = OpenOodb::with_config(&env, OptimizerConfig::all_rules());
        let out = opt.optimize(&q, VarSet::single(c)).expect("feasible plan");
        assert!(
            matches!(out.plan.op, PhysicalOp::IndexScan { .. }),
            "expected a collapsed index scan, got:\n{}",
            oodb_algebra::display::render_physical(&env, &out.plan)
        );
        assert_eq!(out.plan.children.len(), 0);
        let total = out.cost.total();
        assert!(
            total < 0.5,
            "index plan should cost well under a second, got {total}"
        );
    }

    /// Query 2 without the collapse rule: filter over assembly over file
    /// scan, ~4 orders of magnitude slower (paper: 0.08 s vs 119.6 s).
    #[test]
    fn query2_without_collapse_degrades_by_orders_of_magnitude() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (matd, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
        let pred = qb.eq_const(cm, m.ids.person_name, Value::str("Joe"));
        let q = qb.select(matd, pred);
        let env = qb.into_env();

        let fast = OpenOodb::with_config(&env, OptimizerConfig::all_rules())
            .optimize(&q, VarSet::single(c))
            .unwrap();
        let slow = OpenOodb::with_config(
            &env,
            OptimizerConfig::without(&[crate::config::rule_names::COLLAPSE_TO_INDEX_SCAN]),
        )
        .optimize(&q, VarSet::single(c))
        .unwrap();
        assert!(
            slow.cost.total() / fast.cost.total() > 100.0,
            "collapse should win by orders of magnitude: {} vs {}",
            fast.cost.total(),
            slow.cost.total()
        );
    }

    /// Query 3 (Figure 10): requiring the mayor's age in the output makes
    /// the bare index scan infeasible; the winner is assembly (enforcer)
    /// over the index scan, NOT filter-over-assembly-over-scan.
    #[test]
    fn query3_uses_assembly_enforcer_over_index_scan() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (matd, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
        let pred = qb.eq_const(cm, m.ids.person_name, Value::str("Joe"));
        let sel = qb.select(matd, pred);
        let q = qb.project(
            sel,
            vec![qb.attr(cm, m.ids.person_age), qb.attr(c, m.ids.city_name)],
        );
        let env = qb.into_env();

        let out = OpenOodb::with_config(&env, OptimizerConfig::all_rules())
            .optimize(&q, VarSet::EMPTY)
            .unwrap();
        let rendered = oodb_algebra::display::render_physical(&env, &out.plan);
        assert!(
            matches!(out.plan.op, PhysicalOp::AlgProject { .. }),
            "{rendered}"
        );
        assert!(
            matches!(out.plan.children[0].op, PhysicalOp::Assembly { .. }),
            "assembly enforcer expected:\n{rendered}"
        );
        assert!(
            matches!(
                out.plan.children[0].children[0].op,
                PhysicalOp::IndexScan { .. }
            ),
            "index scan underneath:\n{rendered}"
        );
        // Paper: 0.12 s vs 119.6 s for the no-enforcer alternative — three
        // orders of magnitude.
        assert!(out.cost.total() < 1.0, "got {}", out.cost.total());
    }
}
