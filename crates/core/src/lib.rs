//! # `oodb-core` — the Open OODB query optimizer
//!
//! This crate is the paper's primary contribution: a complete,
//! cost-based, extensible object query optimizer "generated" by filling in
//! the [`volcano`] framework with:
//!
//! * an **optimizer model** ([`model::OodbModel`]): logical property
//!   derivation (scope + cardinality + tuple width), selectivity
//!   estimation (naïve 10% default, index-statistics otherwise), and the
//!   *presence-in-memory* physical property;
//! * **transformation rules** ([`rules::transform`]): relational rules
//!   (select splitting and pushing, join commutativity/associativity) plus
//!   the new Mat rules — Mat↔Mat commutativity, Mat-past-join, and the
//!   pivotal **Mat→Join** rewrite that turns reference traversal into a
//!   joinable expression;
//! * **implementation rules** ([`rules::implement`]): file scan, the
//!   **collapse-to-index-scan** rule (select–materialize–get over a path
//!   index), filter, directional **hybrid hash join** (hash table on the
//!   referenced/left side — which is exactly why disabling join
//!   commutativity forces naive pointer chasing), **pointer join**, and
//!   **assembly** as the implementation of Mat;
//! * the **assembly enforcer** ([`rules::enforce`]): assembly in its
//!   second role, enforcing presence-in-memory — the mechanism that finds
//!   the paper's Query 3 plan, which no purely logical optimizer can reach;
//! * a **cost model** ([`cost`]): CPU + I/O in seconds, sequential cheaper
//!   than random, elevator discount for windowed assembly, hash-table
//!   spill beyond the 32 MB DECstation memory;
//! * the top-level driver ([`optimizer::OpenOodb`]) and an
//!   ObjectStore-style **greedy baseline** ([`greedy`]) for the paper's
//!   heuristic-vs-cost-based comparison (Table 3).
//!
//! Rule names are stable strings so experiment configurations can disable
//! rules exactly as the paper does ("simulated by disabling various rules
//! in our optimizer").

#![forbid(unsafe_code)]

pub mod audit;
pub mod config;
pub mod cost;
pub mod dynamic;
pub mod feedback;
pub mod greedy;
pub mod model;
pub mod optimizer;
pub mod plancache;
pub mod rules;

pub use audit::{
    check_confluence, AuditReport, ConfluenceReport, ConfluenceRun, CycleWitness, EnumLimits,
    TerminationProof,
};
pub use config::OptimizerConfig;
pub use cost::{Cost, CostParams};
pub use dynamic::{compile_dynamic, DynamicAlternative, DynamicPlan};
pub use feedback::{
    drift_ratio, FeedbackEntry, FeedbackStats, FeedbackStore, Observation, DEFAULT_DRIFT_THRESHOLD,
    MAX_DRIFT,
};
pub use greedy::greedy_plan;
pub use model::OodbModel;
/// The static plan verifier, re-exported so downstream crates reach the
/// linter and property checker without a separate dependency.
pub use oodb_verify as verify;
pub use optimizer::{greedy_fallback, BoundedOutcome, OpenOodb, OptimizeOutcome};
pub use plancache::{CacheKey, CacheStats, CachedBody, CachedPlan, PlanCache};
