//! An append-only vector with lock-free reads and stable addresses.
//!
//! [`AppendVec`] backs the predicate arena: transformation rules intern
//! new predicates during optimization (writes, serialized on an internal
//! mutex) while executors running cached plans on other threads resolve
//! `PredId`s (reads). The old `RwLock<Vec<_>>` design made every
//! predicate evaluation — once per tuple — take a read lock *and* clone
//! the predicate; under eight threads that lock's cache line was the
//! single hottest word in the process. Here a read is three atomic
//! loads of read-mostly cache lines and hands back `&T` directly.
//!
//! Layout: storage is a sequence of chunks with doubling capacities
//! (64, 128, 256, …). Chunks are allocated on demand and never moved or
//! freed, so a published element's address is stable for the life of
//! the vector — the property that lets `get` return a reference rather
//! than a clone while pushes continue concurrently.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// log2 of the first chunk's capacity.
const BASE_BITS: u32 = 6;
/// Number of chunks; total capacity 64 · (2²⁶ − 1) ≈ 4.3 · 10⁹ slots.
const CHUNKS: usize = 26;

/// Maps an element index to `(chunk, offset_within_chunk)`.
fn locate(i: usize) -> (usize, usize) {
    let adjusted = (i >> BASE_BITS) + 1;
    let chunk = (usize::BITS - 1 - adjusted.leading_zeros()) as usize;
    let start = ((1usize << chunk) - 1) << BASE_BITS;
    (chunk, i - start)
}

/// Capacity of chunk `c`.
fn chunk_cap(c: usize) -> usize {
    1usize << (BASE_BITS + c as u32)
}

/// Append-only chunked vector: lock-free `get`, mutex-serialized `push`,
/// stable `&T` references.
pub struct AppendVec<T> {
    chunks: [OnceLock<Box<[OnceLock<T>]>>; CHUNKS],
    len: AtomicUsize,
    write: Mutex<()>,
}

impl<T> Default for AppendVec<T> {
    fn default() -> Self {
        AppendVec {
            chunks: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicUsize::new(0),
            write: Mutex::new(()),
        }
    }
}

impl<T> AppendVec<T> {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of published elements.
    ///
    /// `Acquire` pairs with the `Release` in [`push`](Self::push): any
    /// index below the returned length is fully initialized and safe to
    /// read without further synchronization.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True when no element has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lock-free read. Returns `None` past the published length.
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len() {
            return None;
        }
        let (c, off) = locate(i);
        // Both lookups succeed for any index below the published length:
        // push initializes the chunk and the slot before the Release
        // store of the new length that our len() Acquire-observed.
        self.chunks[c].get().and_then(|chunk| chunk[off].get())
    }

    /// Appends `value`, returning its index. Writers serialize on an
    /// internal mutex; readers are never blocked.
    pub fn push(&self, value: T) -> usize {
        let _guard = self.write.lock().unwrap_or_else(PoisonError::into_inner);
        let i = self.len.load(Ordering::Relaxed);
        let (c, off) = locate(i);
        let chunk = self.chunks[c].get_or_init(|| {
            (0..chunk_cap(c))
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        if chunk[off].set(value).is_err() {
            // Unreachable: slots below len are set exactly once under
            // the write mutex. Keep the invariant loud in debug builds.
            debug_assert!(false, "AppendVec slot double-write");
        }
        self.len.store(i + 1, Ordering::Release);
        i
    }

    /// Iterates over the elements published at call time.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let n = self.len();
        (0..n).filter_map(move |i| self.get(i))
    }
}

impl<T: Clone> Clone for AppendVec<T> {
    fn clone(&self) -> Self {
        let out = AppendVec::new();
        for v in self.iter() {
            out.push(v.clone());
        }
        out
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AppendVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T> FromIterator<T> for AppendVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let out = AppendVec::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn locate_covers_chunk_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(63), (0, 63));
        assert_eq!(locate(64), (1, 0));
        assert_eq!(locate(191), (1, 127));
        assert_eq!(locate(192), (2, 0));
        assert_eq!(locate(64 * 3 + 256), (3, 0));
    }

    #[test]
    fn push_get_roundtrip_across_chunks() {
        let v = AppendVec::new();
        for i in 0..1000usize {
            assert_eq!(v.push(i * 7), i);
        }
        assert_eq!(v.len(), 1000);
        for i in 0..1000usize {
            assert_eq!(v.get(i), Some(&(i * 7)));
        }
        assert_eq!(v.get(1000), None);
    }

    #[test]
    fn references_stay_stable_across_growth() {
        let v = AppendVec::new();
        v.push(String::from("anchor"));
        let anchor: *const String = v.get(0).unwrap();
        for i in 0..5000 {
            v.push(format!("filler-{i}"));
        }
        // Address unchanged and contents intact after many reallocating
        // pushes — the property the predicate arena relies on.
        assert_eq!(anchor, v.get(0).unwrap() as *const String);
        assert_eq!(v.get(0).unwrap(), "anchor");
    }

    #[test]
    fn concurrent_readers_see_prefix_consistent_data() {
        // Miri interprets every atomic op; keep the interleaving but
        // shrink the volume so the CI leg finishes in seconds.
        let (pushes, scans) = if cfg!(miri) {
            (1_500, 20)
        } else {
            (20_000, 200)
        };
        let v = Arc::new(AppendVec::new());
        let writer = {
            let v = Arc::clone(&v);
            std::thread::spawn(move || {
                for i in 0..pushes {
                    v.push(i);
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let v = Arc::clone(&v);
                std::thread::spawn(move || {
                    for _ in 0..scans {
                        let n = v.len();
                        for i in 0..n {
                            assert_eq!(v.get(i), Some(&i));
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(v.len(), pushes);
    }

    #[test]
    fn clone_and_collect() {
        let v: AppendVec<u32> = (0..300).collect();
        let c = v.clone();
        assert_eq!(c.len(), 300);
        assert_eq!(c.get(299), Some(&299));
        assert_eq!(format!("{:?}", AppendVec::from_iter([1, 2])), "[1, 2]");
    }
}
