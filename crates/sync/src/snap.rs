//! Epoch-snapshot cells: copy-on-write shared state with load-only reads.
//!
//! A [`Snap<T>`] holds an `Arc<T>` that writers replace wholesale and
//! readers observe atomically. The design goal is the same as the
//! `arc-swap` crate's: a reader must never take a lock or perform a
//! read-modify-write on a *shared* cache line just to look at current
//! state, because at eight threads that RMW traffic is exactly the
//! scaling cliff this repo's plan-cache bench measured.
//!
//! With only `std` available the trick is a per-thread snapshot cache:
//!
//! * every cell gets a process-unique id and a version counter;
//! * `load` first reads the version (one `Acquire` load of a cache line
//!   that is only ever *written* on reconfiguration — effectively
//!   read-shared) and, if the calling thread already cached that
//!   version's `Arc`, clones the thread-local handle;
//! * only on a version miss (first read, or after a writer swapped) does
//!   the reader fall back to the internal mutex to refresh its cache.
//!
//! Writers serialize on the mutex, publish the new `Arc`, and bump the
//! version with `Release` ordering so the fast path's `Acquire` load
//! observes a fully initialized snapshot.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Process-wide allocator of unique cell ids (keys for the thread-local
/// snapshot cache).
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

/// Cap on the per-thread cache. Long-lived processes hold a handful of
/// cells (service state, metrics registry); test binaries churn through
/// many short-lived services, so the cache is cleared wholesale once it
/// grows past this bound — correctness never depends on a hit.
const CACHE_CAP: usize = 64;

/// A cached snapshot: the version it was taken at, plus the type-erased
/// `Arc` published under that version.
type CachedSnap = (u64, Arc<dyn Any + Send + Sync>);

thread_local! {
    /// cell id → snapshot last seen by this thread.
    static SNAP_CACHE: RefCell<HashMap<u64, CachedSnap>> =
        RefCell::new(HashMap::new());
}

/// An atomically swappable `Arc<T>` with load-only steady-state reads.
///
/// Readers call [`Snap::load`] and get a consistent snapshot; writers
/// call [`Snap::store`] / [`Snap::swap`] / [`Snap::update`] to publish a
/// complete replacement. There is no partial mutation: every published
/// value is a whole, internally consistent `T`, which is what makes
/// torn reads impossible by construction.
pub struct Snap<T: Send + Sync + 'static> {
    id: u64,
    version: AtomicU64,
    slow: Mutex<Arc<T>>,
}

impl<T: Send + Sync + 'static> Snap<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: T) -> Self {
        Self::from_arc(Arc::new(value))
    }

    /// Creates a cell holding an existing `Arc`.
    pub fn from_arc(arc: Arc<T>) -> Self {
        Snap {
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
            version: AtomicU64::new(1),
            slow: Mutex::new(arc),
        }
    }

    /// Takes a consistent snapshot of the current value.
    ///
    /// Steady state (no writer since this thread's last look): one
    /// `Acquire` load plus a thread-local map probe — no shared-memory
    /// writes at all. After a swap (or on a thread's first read) the
    /// call refreshes through the internal mutex once and is back on
    /// the fast path.
    pub fn load(&self) -> Arc<T> {
        let seen = self.version.load(Ordering::Acquire);
        SNAP_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((v, any)) = cache.get(&self.id) {
                if *v == seen {
                    if let Ok(arc) = Arc::clone(any).downcast::<T>() {
                        return arc;
                    }
                }
            }
            // Miss: refresh under the lock. The version is re-read while
            // the lock is held (writers bump it under the same lock), so
            // the cached (version, Arc) pair is consistent.
            let guard = self.slow.lock().unwrap_or_else(PoisonError::into_inner);
            let arc = Arc::clone(&guard);
            let v = self.version.load(Ordering::Acquire);
            drop(guard);
            if cache.len() >= CACHE_CAP {
                cache.clear();
            }
            cache.insert(self.id, (v, arc.clone() as Arc<dyn Any + Send + Sync>));
            arc
        })
    }

    /// Publishes `value` as the new current snapshot.
    pub fn store(&self, value: T) {
        self.swap(Arc::new(value));
    }

    /// Publishes an existing `Arc` as the new current snapshot.
    pub fn swap(&self, arc: Arc<T>) {
        let mut guard = self.slow.lock().unwrap_or_else(PoisonError::into_inner);
        *guard = arc;
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Read-modify-publish: builds a replacement from the current value
    /// under the writer lock (so concurrent updates serialize and none
    /// is lost) and publishes it.
    pub fn update<R>(&self, f: impl FnOnce(&T) -> (T, R)) -> R {
        let mut guard = self.slow.lock().unwrap_or_else(PoisonError::into_inner);
        let (next, out) = f(&guard);
        *guard = Arc::new(next);
        self.version.fetch_add(1, Ordering::Release);
        out
    }

    /// The number of swaps published so far (starts at 1); useful for
    /// tests asserting that readers observed a quiescent cell.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

impl<T: Send + Sync + 'static + std::fmt::Debug> std::fmt::Debug for Snap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snap").field("value", &self.load()).finish()
    }
}

impl<T: Send + Sync + 'static + Default> Default for Snap<T> {
    fn default() -> Self {
        Snap::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn load_sees_latest_store() {
        let s = Snap::new(1u64);
        assert_eq!(*s.load(), 1);
        s.store(2);
        assert_eq!(*s.load(), 2);
        // Repeated loads hit the thread-local cache and stay correct.
        assert_eq!(*s.load(), 2);
        s.swap(Arc::new(3));
        assert_eq!(*s.load(), 3);
    }

    #[test]
    fn update_serializes_writers() {
        let s = Arc::new(Snap::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        s.update(|v| (*v + 1, ()));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*s.load(), 1000);
    }

    #[test]
    fn snapshots_are_consistent_under_concurrent_swaps() {
        // Value is a pair that writers always keep equal; a torn read
        // would surface as a mismatched pair.
        let s = Arc::new(Snap::new((0u64, 0u64)));
        let stop = Arc::new(AtomicUsize::new(0));
        let writer = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    i += 1;
                    s.store((i, i));
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        let snap = s.load();
                        assert_eq!(snap.0, snap.1, "torn snapshot");
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(1, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn distinct_cells_do_not_alias_in_the_cache() {
        let a = Snap::new(10u32);
        let b = Snap::new(20u32);
        assert_eq!(*a.load(), 10);
        assert_eq!(*b.load(), 20);
        assert_eq!(*a.load(), 10);
    }

    #[test]
    fn cache_overflow_still_reads_correctly() {
        let cells: Vec<Snap<usize>> = (0..(CACHE_CAP * 2 + 3)).map(Snap::new).collect();
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(*c.load(), i);
        }
        for (i, c) in cells.iter().enumerate().rev() {
            assert_eq!(*c.load(), i);
        }
    }
}
