//! # `oodb-sync` — contention-free shared-state primitives
//!
//! The multicore scaling work replaced every hot-path `RwLock` in the
//! system with one of two structures from this crate:
//!
//! * [`Snap`] — an epoch-snapshot cell in the spirit of `arc-swap`:
//!   writers build a complete new value and swap it in under a mutex;
//!   readers take a consistent `Arc` snapshot with, in the steady state,
//!   a single atomic *load* (no read-modify-write on shared cache lines)
//!   thanks to a per-thread version-keyed cache. Built only on `std`.
//! * [`AppendVec`] — an append-only chunked vector whose `get` is
//!   lock-free (three atomic loads) and returns a **stable reference**:
//!   slots never move once published, so `&T` stays valid for the life
//!   of the vector while concurrent pushes proceed.
//!
//! Both structures recover from poisoning (a panicking writer never
//! wedges readers), matching the panic-tolerance discipline of the
//! service layer.

#![forbid(unsafe_code)]

pub mod append_vec;
pub mod snap;

pub use append_vec::AppendVec;
pub use snap::Snap;
