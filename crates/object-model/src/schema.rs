//! Schema: user-defined types, fields, and single inheritance.
//!
//! The paper's data model is the C++ type system as seen through ZQL[C++]:
//! classes with embedded attributes, single-valued references to other
//! classes, and set-valued references. The distinction between *embedded
//! attributes* and *references* is load-bearing for the optimizer — the
//! paper notes that "the `name` instance variables are similar to record
//! fields that need not be explicitly materialized", while each reference
//! link of a path expression becomes a `Mat` operator.

use std::collections::HashMap;
use std::fmt;

/// Index of a type within a [`Schema`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(u32);

impl TypeId {
    /// Constructs from a raw arena index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        TypeId(i as u32)
    }
    /// The raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypeId({})", self.0)
    }
}

/// Index of a field within a [`Schema`] (global across types, so a
/// `FieldId` alone identifies both the owning type and the field).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(u32);

impl FieldId {
    /// Constructs from a raw arena index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        FieldId(i as u32)
    }
    /// The raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FieldId({})", self.0)
    }
}

/// Primitive attribute types (embedded values; no identity).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AttrType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Interned string.
    Str,
    /// Boolean.
    Bool,
    /// Calendar date (days since epoch), the paper's `Date` ADT.
    Date,
}

/// What kind of state a field holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FieldKind {
    /// Embedded attribute — record-field-like, never materialized.
    Attr(AttrType),
    /// Single-valued reference to an object of the given type.
    Ref(TypeId),
    /// Set-valued reference (a set of OIDs of the given type); the source
    /// of `Unnest` operators during simplification.
    RefSet(TypeId),
}

impl FieldKind {
    /// The referenced type, for `Ref`/`RefSet` fields.
    pub fn target(self) -> Option<TypeId> {
        match self {
            FieldKind::Ref(t) | FieldKind::RefSet(t) => Some(t),
            FieldKind::Attr(_) => None,
        }
    }

    /// True for embedded attributes.
    pub fn is_attr(self) -> bool {
        matches!(self, FieldKind::Attr(_))
    }
}

/// A field declaration.
#[derive(Clone, Debug)]
pub struct FieldDef {
    /// Field name as written in queries (e.g. `dept`, `team_members`).
    pub name: String,
    /// Owning type.
    pub owner: TypeId,
    /// Kind of state.
    pub kind: FieldKind,
}

/// A type declaration.
#[derive(Clone, Debug)]
pub struct TypeDef {
    /// Type name (e.g. `Employee`).
    pub name: String,
    /// Optional supertype (single inheritance, as in C++/ZQL).
    pub supertype: Option<TypeId>,
    /// Fields declared directly on this type (inherited fields are reached
    /// via [`Schema::fields_of`]).
    pub fields: Vec<FieldId>,
}

/// A schema: the closed world of types the database knows about.
///
/// Construction goes through [`SchemaBuilder`] so that every name lookup
/// after `build` is O(1) and infallible `TypeId`/`FieldId` indexing is safe.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    types: Vec<TypeDef>,
    fields: Vec<FieldDef>,
    type_by_name: HashMap<String, TypeId>,
    /// `(owner, field-name) -> FieldId`, including inherited fields.
    field_by_name: HashMap<(TypeId, String), FieldId>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// All types.
    pub fn types(&self) -> impl Iterator<Item = (TypeId, &TypeDef)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (TypeId::from_index(i), t))
    }

    /// Number of types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Definition of a type.
    pub fn ty(&self, id: TypeId) -> &TypeDef {
        &self.types[id.index()]
    }

    /// Definition of a field.
    pub fn field(&self, id: FieldId) -> &FieldDef {
        &self.fields[id.index()]
    }

    /// Number of fields across all types. `FieldId`s are dense in
    /// `0..field_count()`, in declaration order — the invariant the
    /// durability schema codec round-trips on.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Looks a type up by name.
    pub fn type_by_name(&self, name: &str) -> Option<TypeId> {
        self.type_by_name.get(name).copied()
    }

    /// Resolves a field by name on a type, walking up the inheritance
    /// chain (mirrors C++ member lookup).
    pub fn field_by_name(&self, ty: TypeId, name: &str) -> Option<FieldId> {
        let mut cur = Some(ty);
        while let Some(t) = cur {
            if let Some(&f) = self.field_by_name.get(&(t, name.to_string())) {
                return Some(f);
            }
            cur = self.types[t.index()].supertype;
        }
        None
    }

    /// All fields visible on a type, inherited first (supertype order),
    /// matching the physical layout the storage manager uses.
    pub fn fields_of(&self, ty: TypeId) -> Vec<FieldId> {
        let mut chain = Vec::new();
        let mut cur = Some(ty);
        while let Some(t) = cur {
            chain.push(t);
            cur = self.types[t.index()].supertype;
        }
        let mut out = Vec::new();
        for t in chain.into_iter().rev() {
            out.extend(self.types[t.index()].fields.iter().copied());
        }
        out
    }

    /// Position of `field` in the physical layout of `ty` (its slot index),
    /// or `None` if the field is not visible on `ty`.
    pub fn slot_of(&self, ty: TypeId, field: FieldId) -> Option<usize> {
        self.fields_of(ty).iter().position(|&f| f == field)
    }

    /// True if `sub` is `sup` or a (transitive) subtype of it.
    pub fn is_subtype(&self, sub: TypeId, sup: TypeId) -> bool {
        let mut cur = Some(sub);
        while let Some(t) = cur {
            if t == sup {
                return true;
            }
            cur = self.types[t.index()].supertype;
        }
        false
    }
}

/// Incremental schema construction with two-phase field registration so
/// mutually-referencing types can be declared in any order.
#[derive(Default)]
pub struct SchemaBuilder {
    schema: Schema,
}

impl SchemaBuilder {
    /// Declares a type (fields are added separately).
    pub fn add_type(&mut self, name: &str, supertype: Option<TypeId>) -> TypeId {
        assert!(
            !self.schema.type_by_name.contains_key(name),
            "duplicate type name {name:?}"
        );
        let id = TypeId::from_index(self.schema.types.len());
        self.schema.types.push(TypeDef {
            name: name.to_string(),
            supertype,
            fields: Vec::new(),
        });
        self.schema.type_by_name.insert(name.to_string(), id);
        id
    }

    /// Adds a field to a previously declared type.
    pub fn add_field(&mut self, owner: TypeId, name: &str, kind: FieldKind) -> FieldId {
        let key = (owner, name.to_string());
        assert!(
            !self.schema.field_by_name.contains_key(&key),
            "duplicate field {name:?} on type {}",
            self.schema.ty(owner).name
        );
        let id = FieldId::from_index(self.schema.fields.len());
        self.schema.fields.push(FieldDef {
            name: name.to_string(),
            owner,
            kind,
        });
        self.schema.types[owner.index()].fields.push(id);
        self.schema.field_by_name.insert(key, id);
        id
    }

    /// Finalizes the schema.
    pub fn build(self) -> Schema {
        self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Schema, TypeId, TypeId) {
        let mut b = Schema::builder();
        let person = b.add_type("Person", None);
        b.add_field(person, "name", FieldKind::Attr(AttrType::Str));
        b.add_field(person, "age", FieldKind::Attr(AttrType::Int));
        let emp = b.add_type("Employee", Some(person));
        b.add_field(emp, "salary", FieldKind::Attr(AttrType::Int));
        (b.build(), person, emp)
    }

    #[test]
    fn inherited_field_lookup() {
        let (s, _person, emp) = toy();
        let f = s.field_by_name(emp, "name").expect("inherited name");
        assert_eq!(s.field(f).name, "name");
        assert!(s.field_by_name(emp, "salary").is_some());
        assert!(s.field_by_name(emp, "nonexistent").is_none());
    }

    #[test]
    fn layout_puts_inherited_fields_first() {
        let (s, _person, emp) = toy();
        let names: Vec<_> = s
            .fields_of(emp)
            .into_iter()
            .map(|f| s.field(f).name.clone())
            .collect();
        assert_eq!(names, ["name", "age", "salary"]);
    }

    #[test]
    fn slot_of_matches_layout() {
        let (s, _person, emp) = toy();
        let salary = s.field_by_name(emp, "salary").unwrap();
        assert_eq!(s.slot_of(emp, salary), Some(2));
    }

    #[test]
    fn subtype_relation() {
        let (s, person, emp) = toy();
        assert!(s.is_subtype(emp, person));
        assert!(s.is_subtype(person, person));
        assert!(!s.is_subtype(person, emp));
    }

    #[test]
    fn base_field_not_visible_on_unrelated_type() {
        let mut b = Schema::builder();
        let a = b.add_type("A", None);
        b.add_field(a, "x", FieldKind::Attr(AttrType::Int));
        let c = b.add_type("C", None);
        let s = b.build();
        assert!(s.field_by_name(c, "x").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate type name")]
    fn duplicate_type_panics() {
        let mut b = Schema::builder();
        b.add_type("A", None);
        b.add_type("A", None);
    }
}
