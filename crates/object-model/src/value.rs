//! Runtime values and objects.

use crate::oid::Oid;
use std::fmt;
use std::sync::Arc;

/// A calendar date, stored as days since 1900-01-01 — enough fidelity for
/// the paper's `Date lr(01,01,1992)` ADT example, with ordered comparison.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Date(pub i32);

impl Date {
    /// Builds a date from year/month/day using a simplified proleptic
    /// calendar (months of 31 days). Monotone in (y, m, d), which is all
    /// comparison predicates need.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Self {
        Date((y - 1900) * 372 + (m as i32 - 1) * 31 + (d as i32 - 1))
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let y = 1900 + self.0.div_euclid(372);
        let rem = self.0.rem_euclid(372);
        write!(f, "{y:04}-{:02}-{:02}", rem / 31 + 1, rem % 31 + 1)
    }
}

/// A comparison-operator shape shared by layers that cannot depend on the
/// algebra crate (e.g. index range scans in the storage manager). The
/// algebra's `CmpOp` converts into this losslessly.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum CmpLike {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A runtime value: the state held in one field slot of an object, or an
/// intermediate scalar produced during predicate evaluation.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Absent / uninitialized.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Interned immutable string.
    Str(Arc<str>),
    /// Calendar date.
    Date(Date),
    /// Single-valued inter-object reference.
    Ref(Oid),
    /// Set-valued reference (a set of OIDs, deduplicated, sorted).
    RefSet(Arc<[Oid]>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// The referenced OID, if this is a `Ref`.
    pub fn as_ref_oid(&self) -> Option<Oid> {
        match self {
            Value::Ref(o) => Some(*o),
            _ => None,
        }
    }

    /// The referenced OID set, if this is a `RefSet`.
    pub fn as_ref_set(&self) -> Option<&[Oid]> {
        match self {
            Value::RefSet(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total comparison used by predicate evaluation; `None` when the two
    /// values are not comparable (type mismatch or NULL involvement).
    pub fn partial_cmp_val(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.partial_cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Bool(a), Bool(b)) => a.partial_cmp(b),
            (Str(a), Str(b)) => a.partial_cmp(b),
            (Date(a), Date(b)) => a.partial_cmp(b),
            (Ref(a), Ref(b)) => a.partial_cmp(b),
            _ => None,
        }
    }

    /// A total order over all values: same-variant values order naturally
    /// (floats by `total_cmp`), different variants by discriminant, with
    /// `Null` first. Used by histograms and index structures.
    pub fn total_cmp_val(&self, other: &Value) -> std::cmp::Ordering {
        use Value::*;
        fn tag(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) => 2,
                Float(_) => 3,
                Date(_) => 4,
                Str(_) => 5,
                Ref(_) => 6,
                RefSet(_) => 7,
            }
        }
        match (self, other) {
            (Null, Null) => std::cmp::Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Ref(a), Ref(b)) => a.cmp(b),
            (RefSet(a), RefSet(b)) => {
                let mut ka: Vec<u64> = a.iter().map(|o| o.as_u64()).collect();
                let mut kb: Vec<u64> = b.iter().map(|o| o.as_u64()).collect();
                ka.sort_unstable();
                kb.sort_unstable();
                ka.cmp(&kb)
            }
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }

    /// A stable hash key for hash-based matching (join/intersect). `None`
    /// for values that cannot key a hash table (floats hash via bit
    /// pattern, which is fine for generated data).
    pub fn hash_key(&self) -> Option<u64> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        match self {
            Value::Null => return None,
            Value::Int(i) => (0u8, i).hash(&mut h),
            Value::Float(f) => (1u8, f.to_bits()).hash(&mut h),
            Value::Bool(b) => (2u8, b).hash(&mut h),
            Value::Str(s) => (3u8, &**s).hash(&mut h),
            Value::Date(d) => (4u8, d.0).hash(&mut h),
            Value::Ref(o) => (5u8, o.as_u64()).hash(&mut h),
            Value::RefSet(_) => return None,
        }
        Some(h.finish())
    }
}

// Plan nodes embedding constants must be hashable for memo deduplication.
// Floats compare and hash by bit pattern (NaN == NaN); queries never
// produce NaN constants, so this is safe and documented behaviour.
impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Str(s) => s.hash(state),
            Value::Date(d) => d.0.hash(state),
            Value::Ref(o) => o.as_u64().hash(state),
            Value::RefSet(s) => {
                for o in s.iter() {
                    o.as_u64().hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Ref(o) => write!(f, "{o}"),
            Value::RefSet(s) => write!(f, "{{{} refs}}", s.len()),
        }
    }
}

/// An object: identity plus one value per field slot, laid out per
/// [`crate::Schema::fields_of`].
#[derive(Clone, Debug, PartialEq)]
pub struct Object {
    /// The object's identity.
    pub oid: Oid,
    /// Field slots in layout order.
    pub slots: Vec<Value>,
}

impl Object {
    /// Creates an object with the given identity and slots.
    pub fn new(oid: Oid, slots: Vec<Value>) -> Self {
        Object { oid, slots }
    }

    /// Reads a slot by layout index.
    pub fn slot(&self, i: usize) -> &Value {
        &self.slots[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TypeId;

    #[test]
    fn date_ordering_matches_calendar() {
        assert!(Date::from_ymd(1992, 1, 1) < Date::from_ymd(1992, 1, 2));
        assert!(Date::from_ymd(1991, 12, 31) < Date::from_ymd(1992, 1, 1));
        assert!(Date::from_ymd(1992, 2, 1) > Date::from_ymd(1992, 1, 31));
    }

    #[test]
    fn date_displays_readably() {
        assert_eq!(Date::from_ymd(1992, 1, 1).to_string(), "1992-01-01");
    }

    #[test]
    fn value_comparisons() {
        assert_eq!(
            Value::Int(3).partial_cmp_val(&Value::Int(5)),
            Some(std::cmp::Ordering::Less)
        );
        assert_eq!(
            Value::str("a").partial_cmp_val(&Value::str("a")),
            Some(std::cmp::Ordering::Equal)
        );
        // Mixed numeric comparison is supported.
        assert_eq!(
            Value::Int(2).partial_cmp_val(&Value::Float(2.5)),
            Some(std::cmp::Ordering::Less)
        );
        // Incomparable types yield None.
        assert_eq!(Value::Int(1).partial_cmp_val(&Value::str("1")), None);
        assert_eq!(Value::Null.partial_cmp_val(&Value::Int(1)), None);
    }

    #[test]
    fn hash_key_distinguishes_types() {
        // Int(0) and Bool(false) must not collide just because both are "0".
        assert_ne!(Value::Int(0).hash_key(), Value::Bool(false).hash_key());
        assert_eq!(Value::Null.hash_key(), None);
    }

    #[test]
    fn ref_equality_is_identity() {
        let t = TypeId::from_index(0);
        let a = Value::Ref(Oid::new(t, 1));
        let b = Value::Ref(Oid::new(t, 1));
        assert_eq!(a.partial_cmp_val(&b), Some(std::cmp::Ordering::Equal));
    }
}
