//! The paper's schema and catalog (Table 1), reconstructed.
//!
//! The SIGMOD '93 scan of Table 1 is OCR-damaged; values below are fixed
//! from the prose where possible (e.g. "1,000, the number of Department
//! objects") and otherwise chosen to be era-plausible. Every choice is
//! recorded in `DESIGN.md` / `EXPERIMENTS.md`.
//!
//! | Set type    | Set name  | Card.  | Obj bytes | Extent? | Extent card. |
//! |-------------|-----------|--------|-----------|---------|--------------|
//! | Capital     | Capitals  | 160    | 400       | no      | —            |
//! | City        | Cities    | 10,000 | 200       | no      | —            |
//! | Country     | —         | —      | 300       | yes     | 160          |
//! | Department  | —         | —      | 400       | yes     | 1,000        |
//! | Employee    | Employees | 50,000 | 250       | yes     | 200,000      |
//! | Information | —         | —      | 400       | yes     | 1,000        |
//! | Job         | —         | —      | 250       | yes     | 5,000        |
//! | Person      | —         | —      | 100       | yes     | 100,000      |
//! | Plant       | —         | —      | 1,000     | **no**  | —            |
//! | Task        | Tasks     | 2,000  | 120       | yes     | 10,000       |
//!
//! `Plant` deliberately has no extent: the optimizer is then
//! cardinality-blind for plants, reproducing the paper's 50,000-page-fault
//! estimate for the naive Query 1 plan.

use crate::catalog::{Catalog, CollectionDef, CollectionId, CollectionKind, IndexDef, IndexId};
use crate::schema::{AttrType, FieldId, FieldKind, Schema, TypeId};

/// Handles to every schema/catalog entity the experiments reference.
#[derive(Clone, Debug)]
pub struct PaperIds {
    /// `Person` type.
    pub person: TypeId,
    /// `Employee` type (subtype of `Person`).
    pub employee: TypeId,
    /// `Department` type.
    pub department: TypeId,
    /// `Plant` type (no extent!).
    pub plant: TypeId,
    /// `Job` type.
    pub job: TypeId,
    /// `Country` type.
    pub country: TypeId,
    /// `City` type.
    pub city: TypeId,
    /// `Capital` type (subtype of `City`).
    pub capital: TypeId,
    /// `Task` type.
    pub task: TypeId,
    /// `Information` type.
    pub information: TypeId,

    /// `Person.name`.
    pub person_name: FieldId,
    /// `Person.age`.
    pub person_age: FieldId,
    /// `Employee.salary`.
    pub emp_salary: FieldId,
    /// `Employee.last_raise`.
    pub emp_last_raise: FieldId,
    /// `Employee.dept` → `Department`.
    pub emp_dept: FieldId,
    /// `Employee.job` → `Job`.
    pub emp_job: FieldId,
    /// `Department.name`.
    pub dept_name: FieldId,
    /// `Department.floor`.
    pub dept_floor: FieldId,
    /// `Department.plant` → `Plant`.
    pub dept_plant: FieldId,
    /// `Plant.name`.
    pub plant_name: FieldId,
    /// `Plant.location`.
    pub plant_location: FieldId,
    /// `Job.name`.
    pub job_name: FieldId,
    /// `Job.pay_grade`.
    pub job_pay_grade: FieldId,
    /// `Country.name`.
    pub country_name: FieldId,
    /// `Country.president` → `Person`.
    pub country_president: FieldId,
    /// `Country.info` → `Information`.
    pub country_info: FieldId,
    /// `City.name`.
    pub city_name: FieldId,
    /// `City.population`.
    pub city_population: FieldId,
    /// `City.mayor` → `Person`.
    pub city_mayor: FieldId,
    /// `City.country` → `Country`.
    pub city_country: FieldId,
    /// `Capital.since`.
    pub capital_since: FieldId,
    /// `Task.title`.
    pub task_title: FieldId,
    /// `Task.time` (completion time in hours; Query 4 selects on it).
    pub task_time: FieldId,
    /// `Task.team_members` → set of `Employee`.
    pub task_team_members: FieldId,
    /// `Information.subject`.
    pub info_subject: FieldId,

    /// `Capitals` user set.
    pub capitals: CollectionId,
    /// `Cities` user set.
    pub cities: CollectionId,
    /// `Employees` user set.
    pub employees: CollectionId,
    /// `Tasks` user set.
    pub tasks: CollectionId,
    /// `extent(Country)`.
    pub country_extent: CollectionId,
    /// `extent(Department)`.
    pub department_extent: CollectionId,
    /// `extent(Employee)`.
    pub employee_extent: CollectionId,
    /// `extent(Information)`.
    pub information_extent: CollectionId,
    /// `extent(Job)`.
    pub job_extent: CollectionId,
    /// `extent(Person)`.
    pub person_extent: CollectionId,
    /// `extent(Task)`.
    pub task_extent: CollectionId,

    /// Path index `Cities(mayor.name)` — Queries 2 and 3.
    pub idx_cities_mayor_name: IndexId,
    /// Attribute index `Tasks(time)` — Query 4 ("Time only").
    pub idx_tasks_time: IndexId,
    /// Attribute index `Employees(name)` — Query 4 ("Name only").
    pub idx_employees_name: IndexId,
}

/// A bundle of schema, catalog and handles.
#[derive(Clone, Debug)]
pub struct PaperModel {
    /// The schema.
    pub schema: Schema,
    /// The catalog with Table 1 statistics and the experiments' indexes.
    pub catalog: Catalog,
    /// Entity handles.
    pub ids: PaperIds,
}

/// Number of distinct `Person.name` values assumed by selectivity
/// estimation for the `Cities(mayor.name)` path index ("the optimizer
/// estimates that only 2 cities have mayors named Joe": 10,000 / 5,000).
pub const DISTINCT_MAYOR_NAMES: u64 = 5_000;
/// Distinct `Task.time` values (2,000 tasks / 50 → 40 tasks per time).
pub const DISTINCT_TASK_TIMES: u64 = 50;
/// Distinct `Employee.name` values in the `Employees` set (50,000 / 100 →
/// 500 employees per name; fetching them through the unclustered name
/// index is what makes the greedy Query 4 plan slow).
pub const DISTINCT_EMPLOYEE_NAMES: u64 = 100;
/// Average `Task.team_members` set size (2,000 × 5 = 10,000 member refs,
/// matching the ~108 s naive estimate for Query 4 without indexes).
pub const AVG_TEAM_MEMBERS: u64 = 5;

/// Builds the paper's schema.
pub fn paper_schema() -> (Schema, PaperIds) {
    let mut b = Schema::builder();

    let person = b.add_type("Person", None);
    let employee = b.add_type("Employee", Some(person));
    let department = b.add_type("Department", None);
    let plant = b.add_type("Plant", None);
    let job = b.add_type("Job", None);
    let country = b.add_type("Country", None);
    let city = b.add_type("City", None);
    let capital = b.add_type("Capital", Some(city));
    let task = b.add_type("Task", None);
    let information = b.add_type("Information", None);

    let person_name = b.add_field(person, "name", FieldKind::Attr(AttrType::Str));
    let person_age = b.add_field(person, "age", FieldKind::Attr(AttrType::Int));

    let emp_salary = b.add_field(employee, "salary", FieldKind::Attr(AttrType::Int));
    let emp_last_raise = b.add_field(employee, "last_raise", FieldKind::Attr(AttrType::Date));
    let emp_dept = b.add_field(employee, "dept", FieldKind::Ref(department));
    let emp_job = b.add_field(employee, "job", FieldKind::Ref(job));

    let dept_name = b.add_field(department, "name", FieldKind::Attr(AttrType::Str));
    let dept_floor = b.add_field(department, "floor", FieldKind::Attr(AttrType::Int));
    let dept_plant = b.add_field(department, "plant", FieldKind::Ref(plant));

    let plant_name = b.add_field(plant, "name", FieldKind::Attr(AttrType::Str));
    let plant_location = b.add_field(plant, "location", FieldKind::Attr(AttrType::Str));

    let job_name = b.add_field(job, "name", FieldKind::Attr(AttrType::Str));
    let job_pay_grade = b.add_field(job, "pay_grade", FieldKind::Attr(AttrType::Int));

    let country_name = b.add_field(country, "name", FieldKind::Attr(AttrType::Str));
    let country_president = b.add_field(country, "president", FieldKind::Ref(person));
    let country_info = b.add_field(country, "info", FieldKind::Ref(information));

    let city_name = b.add_field(city, "name", FieldKind::Attr(AttrType::Str));
    let city_population = b.add_field(city, "population", FieldKind::Attr(AttrType::Int));
    let city_mayor = b.add_field(city, "mayor", FieldKind::Ref(person));
    let city_country = b.add_field(city, "country", FieldKind::Ref(country));

    let capital_since = b.add_field(capital, "since", FieldKind::Attr(AttrType::Date));

    let task_title = b.add_field(task, "title", FieldKind::Attr(AttrType::Str));
    let task_time = b.add_field(task, "time", FieldKind::Attr(AttrType::Int));
    let task_team_members = b.add_field(task, "team_members", FieldKind::RefSet(employee));

    let info_subject = b.add_field(information, "subject", FieldKind::Attr(AttrType::Str));

    let schema = b.build();
    let ids = PaperIds {
        person,
        employee,
        department,
        plant,
        job,
        country,
        city,
        capital,
        task,
        information,
        person_name,
        person_age,
        emp_salary,
        emp_last_raise,
        emp_dept,
        emp_job,
        dept_name,
        dept_floor,
        dept_plant,
        plant_name,
        plant_location,
        job_name,
        job_pay_grade,
        country_name,
        country_president,
        country_info,
        city_name,
        city_population,
        city_mayor,
        city_country,
        capital_since,
        task_title,
        task_time,
        task_team_members,
        info_subject,
        // Collection/index ids are filled in by `paper_model`; placeholder
        // values here are overwritten before the struct is exposed.
        capitals: CollectionId::from_index(0),
        cities: CollectionId::from_index(0),
        employees: CollectionId::from_index(0),
        tasks: CollectionId::from_index(0),
        country_extent: CollectionId::from_index(0),
        department_extent: CollectionId::from_index(0),
        employee_extent: CollectionId::from_index(0),
        information_extent: CollectionId::from_index(0),
        job_extent: CollectionId::from_index(0),
        person_extent: CollectionId::from_index(0),
        task_extent: CollectionId::from_index(0),
        idx_cities_mayor_name: IndexId::from_index(0),
        idx_tasks_time: IndexId::from_index(0),
        idx_employees_name: IndexId::from_index(0),
    };
    (schema, ids)
}

/// Builds the complete paper model: schema, Table 1 catalog, and the three
/// experiment indexes.
pub fn paper_model() -> PaperModel {
    paper_model_scaled(1)
}

/// Like [`paper_model`], but with every cardinality (and distinct-key
/// statistic) divided by `div` — used by tests and the executor-validation
/// experiments that need a small but proportionally faithful database.
pub fn paper_model_scaled(div: u64) -> PaperModel {
    let div = div.max(1);
    let sc = |n: u64| (n / div).max(1);
    let (schema, mut ids) = paper_schema();
    let mut cat = Catalog::new();

    let set = |name: &str, ty: TypeId, card: u64, bytes: u32| CollectionDef {
        name: name.to_string(),
        elem_type: ty,
        kind: CollectionKind::UserSet,
        cardinality: card,
        obj_bytes: bytes,
    };
    let extent = |ty_name: &str, ty: TypeId, card: u64, bytes: u32| CollectionDef {
        name: format!("extent({ty_name})"),
        elem_type: ty,
        kind: CollectionKind::Extent,
        cardinality: card,
        obj_bytes: bytes,
    };

    ids.capitals = cat.add_collection(set("Capitals", ids.capital, sc(160), 400));
    ids.cities = cat.add_collection(set("Cities", ids.city, sc(10_000), 200));
    ids.employees = cat.add_collection(set("Employees", ids.employee, sc(50_000), 250));
    ids.tasks = cat.add_collection(set("Tasks", ids.task, sc(2_000), 120));
    ids.country_extent = cat.add_collection(extent("Country", ids.country, sc(160), 300));
    ids.department_extent =
        cat.add_collection(extent("Department", ids.department, sc(1_000), 400));
    ids.employee_extent = cat.add_collection(extent("Employee", ids.employee, sc(200_000), 250));
    ids.information_extent =
        cat.add_collection(extent("Information", ids.information, sc(1_000), 400));
    ids.job_extent = cat.add_collection(extent("Job", ids.job, sc(5_000), 250));
    ids.person_extent = cat.add_collection(extent("Person", ids.person, sc(100_000), 100));
    ids.task_extent = cat.add_collection(extent("Task", ids.task, sc(10_000), 120));
    // Plant: NO extent, NO set — the optimizer has no cardinality for it.

    // Integrity constraints and set statistics the optimizer may use:
    // task team members are drawn from the Employees set, and teams average
    // AVG_TEAM_MEMBERS employees.
    cat.set_ref_domain(ids.task_team_members, ids.employees);
    cat.set_fanout(ids.task_team_members, AVG_TEAM_MEMBERS as f64);

    ids.idx_cities_mayor_name = cat.add_index(IndexDef {
        name: "Cities_mayor_name".into(),
        collection: ids.cities,
        path: vec![ids.city_mayor],
        key: ids.person_name,
        distinct_keys: sc(DISTINCT_MAYOR_NAMES),
        clustered: false,
    });
    ids.idx_tasks_time = cat.add_index(IndexDef {
        name: "Tasks_time".into(),
        collection: ids.tasks,
        path: vec![],
        key: ids.task_time,
        distinct_keys: DISTINCT_TASK_TIMES.min(sc(2_000)),
        clustered: false,
    });
    ids.idx_employees_name = cat.add_index(IndexDef {
        name: "Employees_name".into(),
        collection: ids.employees,
        path: vec![],
        key: ids.person_name,
        distinct_keys: DISTINCT_EMPLOYEE_NAMES.min(sc(50_000)),
        clustered: false,
    });

    PaperModel {
        schema,
        catalog: cat,
        ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::validate_catalog;

    #[test]
    fn paper_catalog_is_valid() {
        let m = paper_model();
        let problems = validate_catalog(&m.schema, &m.catalog);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn table1_cardinalities() {
        let m = paper_model();
        let card = |id| m.catalog.collection(id).cardinality;
        assert_eq!(card(m.ids.cities), 10_000);
        assert_eq!(card(m.ids.employees), 50_000);
        assert_eq!(card(m.ids.employee_extent), 200_000);
        assert_eq!(card(m.ids.department_extent), 1_000);
        assert_eq!(card(m.ids.job_extent), 5_000);
        assert_eq!(card(m.ids.person_extent), 100_000);
        assert_eq!(card(m.ids.country_extent), 160);
        assert_eq!(card(m.ids.capitals), 160);
    }

    #[test]
    fn plant_is_cardinality_blind() {
        let m = paper_model();
        assert!(
            m.catalog.extent_of(m.ids.plant).is_none(),
            "Plant must have no extent so assembly cannot bound its faults"
        );
    }

    #[test]
    fn employee_inherits_person_name() {
        let m = paper_model();
        assert_eq!(
            m.schema.field_by_name(m.ids.employee, "name"),
            Some(m.ids.person_name)
        );
    }

    #[test]
    fn experiment_indexes_resolvable() {
        let m = paper_model();
        assert!(m
            .catalog
            .find_index(m.ids.cities, &[m.ids.city_mayor], m.ids.person_name)
            .is_some());
        assert!(m
            .catalog
            .find_index(m.ids.tasks, &[], m.ids.task_time)
            .is_some());
        // Sweep helper removes the right ones.
        let none = m.catalog.with_only_indexes(&[]);
        assert_eq!(none.indexes().count(), 0);
        let time_only = m.catalog.with_only_indexes(&["Tasks_time"]);
        assert_eq!(time_only.indexes().count(), 1);
    }

    #[test]
    fn capital_is_subtype_of_city() {
        let m = paper_model();
        assert!(m.schema.is_subtype(m.ids.capital, m.ids.city));
    }
}
