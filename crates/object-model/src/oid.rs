//! Object identifiers.
//!
//! Open OODB objects carry identity independent of their state. We encode an
//! OID as a `(type, sequence)` pair packed into 64 bits; the type tag lets
//! the storage manager route a dereference to the right extent without a
//! global OID directory, which matches the paper's assumption that stored
//! references are direct ("goto's on disk").

use crate::schema::TypeId;
use std::fmt;

/// An object identifier: the unit of inter-object reference.
///
/// OIDs are value types — copying an OID copies identity, not state. Two
/// OIDs compare equal iff they denote the same object, which is exactly the
/// semantics of ZQL's `==` on object-valued expressions (the paper's
/// "comparison of department objects based on their OID's").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    ty: TypeId,
    seq: u32,
}

impl Oid {
    /// Creates an OID for the `seq`-th object of type `ty`.
    #[inline]
    pub fn new(ty: TypeId, seq: u32) -> Self {
        Oid { ty, seq }
    }

    /// The (exact) type of the referenced object.
    #[inline]
    pub fn type_id(self) -> TypeId {
        self.ty
    }

    /// The per-type sequence number (dense from 0).
    #[inline]
    pub fn seq(self) -> u32 {
        self.seq
    }

    /// Packs the OID into a single `u64`, useful as a hash-join key.
    #[inline]
    pub fn as_u64(self) -> u64 {
        ((self.ty.index() as u64) << 32) | self.seq as u64
    }

    /// Inverse of [`Oid::as_u64`].
    #[inline]
    pub fn from_u64(bits: u64) -> Self {
        Oid {
            ty: TypeId::from_index((bits >> 32) as u32 as usize),
            seq: bits as u32,
        }
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oid({}:{})", self.ty.index(), self.seq)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}:{}", self.ty.index(), self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oid_roundtrips_through_u64() {
        let oid = Oid::new(TypeId::from_index(7), 123_456);
        assert_eq!(Oid::from_u64(oid.as_u64()), oid);
    }

    #[test]
    fn oid_identity_semantics() {
        let a = Oid::new(TypeId::from_index(1), 5);
        let b = Oid::new(TypeId::from_index(1), 5);
        let c = Oid::new(TypeId::from_index(2), 5);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn oid_orders_by_type_then_seq() {
        let a = Oid::new(TypeId::from_index(1), 9);
        let b = Oid::new(TypeId::from_index(2), 0);
        assert!(a < b);
    }
}
