//! Attribute statistics: equi-depth histograms.
//!
//! The paper's first item of future work: "we will evaluate and refine the
//! 'rougher' modules, in particular selectivity and cost estimation." This
//! module is that refinement: per-attribute (or per-path) equi-depth
//! histograms the optimizer consults *before* falling back to the 1993
//! heuristics (index distinct counts, then the naïve 10%).
//!
//! A histogram stores `b` bucket boundaries over the sorted value
//! population plus the exact distinct count; equality selectivity uses
//! distinct counts within the covering bucket, range selectivity
//! interpolates over bucket positions.

use crate::value::Value;
use std::cmp::Ordering;

/// An equi-depth histogram over one attribute's population.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// `buckets + 1` boundary values: `bounds[0]` = min, `bounds[n]` = max.
    bounds: Vec<Value>,
    /// Total number of values summarized.
    total: u64,
    /// Exact number of distinct values.
    distinct: u64,
}

impl Histogram {
    /// Builds an equi-depth histogram with (up to) `buckets` buckets.
    /// Returns `None` for an empty population.
    pub fn build(mut values: Vec<Value>, buckets: usize) -> Option<Histogram> {
        if values.is_empty() {
            return None;
        }
        values.sort_by(Value::total_cmp_val);
        let total = values.len() as u64;
        let mut distinct = 1u64;
        for w in values.windows(2) {
            if w[0].total_cmp_val(&w[1]) != Ordering::Equal {
                distinct += 1;
            }
        }
        let buckets = buckets.clamp(1, values.len());
        let mut bounds = Vec::with_capacity(buckets + 1);
        for i in 0..=buckets {
            let idx = (i * (values.len() - 1)) / buckets;
            bounds.push(values[idx].clone());
        }
        Some(Histogram {
            bounds,
            total,
            distinct,
        })
    }

    /// Number of values summarized.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The bucket boundary values (`buckets + 1` entries, min..max).
    /// Exposed for serialization (the durability checkpoint codec).
    pub fn bounds(&self) -> &[Value] {
        &self.bounds
    }

    /// Reassembles a histogram from serialized parts. Returns `None` when
    /// the parts cannot be a [`Histogram::build`] product: fewer than two
    /// boundaries, an empty population, or more distinct values than
    /// total values.
    pub fn from_parts(bounds: Vec<Value>, total: u64, distinct: u64) -> Option<Histogram> {
        if bounds.len() < 2 || total == 0 || distinct == 0 || distinct > total {
            return None;
        }
        Some(Histogram {
            bounds,
            total,
            distinct,
        })
    }

    /// Exact distinct count.
    pub fn distinct(&self) -> u64 {
        self.distinct
    }

    /// Fraction of the population ≤ `v`, interpolated over the equi-depth
    /// bucket positions.
    pub fn fraction_le(&self, v: &Value) -> f64 {
        let n = self.bounds.len() - 1;
        if v.total_cmp_val(&self.bounds[0]) == Ordering::Less {
            return 0.0;
        }
        if v.total_cmp_val(&self.bounds[n]) != Ordering::Less {
            return 1.0;
        }
        // Find the bucket whose [lo, hi) straddles v; each holds 1/n of
        // the mass. Without intra-bucket value distribution we credit the
        // full straddled bucket's half — a standard midpoint rule.
        let mut covered = 0.0;
        for i in 0..n {
            let hi = &self.bounds[i + 1];
            match v.total_cmp_val(hi) {
                Ordering::Less => {
                    covered += 0.5 / n as f64;
                    break;
                }
                _ => covered += 1.0 / n as f64,
            }
        }
        covered.min(1.0)
    }

    /// Equality selectivity: one distinct value's share of the population,
    /// zero when `v` lies outside the observed range.
    pub fn selectivity_eq(&self, v: &Value) -> f64 {
        let n = self.bounds.len() - 1;
        if v.total_cmp_val(&self.bounds[0]) == Ordering::Less
            || v.total_cmp_val(&self.bounds[n]) == Ordering::Greater
        {
            return 0.0;
        }
        1.0 / self.distinct.max(1) as f64
    }

    /// Range selectivity for `attr < v` / `attr <= v` (the complementary
    /// operators derive from it).
    pub fn selectivity_lt(&self, v: &Value) -> f64 {
        self.fraction_le(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: impl IntoIterator<Item = i64>) -> Vec<Value> {
        vals.into_iter().map(Value::Int).collect()
    }

    #[test]
    fn uniform_population_interpolates_linearly() {
        let h = Histogram::build(ints(0..1000), 20).unwrap();
        assert_eq!(h.total(), 1000);
        assert_eq!(h.distinct(), 1000);
        let f = h.fraction_le(&Value::Int(250));
        assert!((f - 0.25).abs() < 0.06, "{f}");
        assert_eq!(h.fraction_le(&Value::Int(-5)), 0.0);
        assert_eq!(h.fraction_le(&Value::Int(10_000)), 1.0);
    }

    #[test]
    fn skewed_population_beats_uniform_assumption() {
        // 90% of the mass at small values, long tail.
        let mut vals: Vec<i64> = (0..900).map(|i| i % 10).collect();
        vals.extend((0..100).map(|i| 1000 + i));
        let h = Histogram::build(ints(vals), 20).unwrap();
        // attr < 100 covers 90% of the population; a uniform model over
        // [0, 1100) would say ~9%.
        let f = h.fraction_le(&Value::Int(100));
        assert!(f > 0.8, "equi-depth must capture the skew, got {f}");
    }

    #[test]
    fn equality_selectivity_uses_distinct_count() {
        let h = Histogram::build(ints((0..1000).map(|i| i % 50)), 10).unwrap();
        assert_eq!(h.distinct(), 50);
        assert!((h.selectivity_eq(&Value::Int(7)) - 0.02).abs() < 1e-12);
        assert_eq!(h.selectivity_eq(&Value::Int(999)), 0.0, "out of range");
    }

    #[test]
    fn string_histograms_work() {
        let vals: Vec<Value> = (0..100)
            .map(|i| Value::str(&format!("k{:03}", i % 10)))
            .collect();
        let h = Histogram::build(vals, 5).unwrap();
        assert_eq!(h.distinct(), 10);
        assert!(h.fraction_le(&Value::str("k005")) > 0.4);
    }

    #[test]
    fn tiny_and_empty_populations() {
        assert!(Histogram::build(vec![], 10).is_none());
        let h = Histogram::build(ints([42]), 10).unwrap();
        assert_eq!(h.total(), 1);
        assert_eq!(h.selectivity_eq(&Value::Int(42)), 1.0);
        assert_eq!(h.fraction_le(&Value::Int(41)), 0.0);
    }
}
