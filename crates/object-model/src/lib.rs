//! # `oodb-object` — the Open OODB object data model
//!
//! This crate implements the data-model substrate of the Open OODB query
//! optimizer reproduction (Blakeley, McKenna, Graefe; SIGMOD 1993):
//!
//! * **Object identity** ([`Oid`]) and typed object values ([`Value`],
//!   [`Object`]).
//! * **Schema** ([`Schema`], [`TypeDef`], [`FieldDef`]): user-defined types
//!   with single inheritance, embedded attributes (record-field-like values
//!   that never need explicit materialization), single-valued inter-object
//!   references, and set-valued references.
//! * **Catalog** ([`Catalog`]): named collections (user-defined sets and
//!   type extents), their cardinalities and object sizes (the paper's
//!   Table 1), and index descriptors including *path indexes*
//!   ([`IndexDef`]) that drive the paper's collapse-to-index-scan rule.
//!
//! A faithful reconstruction of the paper's Table 1 schema and catalog is
//! provided by [`paper::paper_schema`] and [`paper::paper_model`].
//!
//! Everything downstream — storage, algebra, optimizer, executor, and the
//! ZQL front end — consumes this crate.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod oid;
pub mod paper;
pub mod schema;
pub mod stats;
pub mod value;

pub use catalog::{
    Catalog, CollectionDef, CollectionId, CollectionKind, IndexDef, IndexId, IndexKind,
};
pub use oid::Oid;
pub use schema::{AttrType, FieldDef, FieldId, FieldKind, Schema, TypeDef, TypeId};
pub use stats::Histogram;
pub use value::{Date, Object, Value};
