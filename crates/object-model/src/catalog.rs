//! Catalog: named collections, statistics, and index descriptors.
//!
//! This is the optimizer's window onto physical data. Two of the paper's
//! evaluation points hinge on exactly what the catalog records:
//!
//! * **Cardinality is kept only for sets and extents.** Types without an
//!   extent (the paper's `Plant`) expose *no* cardinality, so the optimizer
//!   cannot bound the number of page faults when assembling them — this is
//!   the source of the 50,000-fault estimate for the naive Query 1 plan.
//! * **Indexes, including path indexes**, are catalog entries: the
//!   collapse-to-index-scan implementation rule fires only when a matching
//!   [`IndexDef`] exists, and Table 3 sweeps index availability.

use crate::schema::{FieldId, Schema, TypeId};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a collection (user-defined set or type extent).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CollectionId(u32);

impl CollectionId {
    /// Constructs from a raw arena index.
    pub fn from_index(i: usize) -> Self {
        CollectionId(i as u32)
    }
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CollectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CollectionId({})", self.0)
    }
}

/// Identifier of an index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexId(u32);

impl IndexId {
    /// Constructs from a raw arena index.
    pub fn from_index(i: usize) -> Self {
        IndexId(i as u32)
    }
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IndexId({})", self.0)
    }
}

/// Whether a collection is a user-defined set or a type extent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollectionKind {
    /// A named, user-defined set (e.g. `Employees`); may be a subset of the
    /// type's population.
    UserSet,
    /// The system-maintained extent holding *all* instances of a type —
    /// the only collection the Mat→Join rule may scan as a substitute for
    /// reference traversal.
    Extent,
}

/// A collection the query processor can scan.
#[derive(Clone, Debug)]
pub struct CollectionDef {
    /// Collection name (`Employees`, `extent(Job)`, ...).
    pub name: String,
    /// Element type.
    pub elem_type: TypeId,
    /// Set or extent.
    pub kind: CollectionKind,
    /// Exact cardinality. Present because cardinality *is* maintained for
    /// sets and extents (and only for them) in the paper's prototype.
    pub cardinality: u64,
    /// Average object size in bytes (Table 1's `Obj. Size`).
    pub obj_bytes: u32,
}

/// Kind of index.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexKind {
    /// Index on an embedded attribute of the collection's elements.
    Attribute,
    /// Path index: key is reached by traversing one or more reference
    /// fields and ending in an attribute (e.g. `Cities` on `mayor.name`).
    Path,
}

/// An index over a collection.
///
/// `path` holds the reference links traversed (empty for plain attribute
/// indexes) and `key` the terminal attribute. A path index answers a
/// predicate on the full path *without materializing intermediate objects*,
/// which is exactly why the collapsed index scan in the paper's Query 2
/// delivers city objects only — "the mayor component objects are never read
/// into memory".
#[derive(Clone, Debug)]
pub struct IndexDef {
    /// Index name, for plan display.
    pub name: String,
    /// Indexed collection.
    pub collection: CollectionId,
    /// Reference links from the element type to the key's owner (empty for
    /// attribute indexes).
    pub path: Vec<FieldId>,
    /// Terminal attribute.
    pub key: FieldId,
    /// Number of distinct key values — drives selectivity estimation.
    pub distinct_keys: u64,
    /// Whether entries are clustered with the collection's storage order.
    /// Unclustered indexes pay one random I/O per match when fetching.
    pub clustered: bool,
}

impl IndexDef {
    /// Attribute vs path index.
    pub fn kind(&self) -> IndexKind {
        if self.path.is_empty() {
            IndexKind::Attribute
        } else {
            IndexKind::Path
        }
    }
}

/// The catalog: collections, extents, indexes, and their statistics.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    collections: Vec<CollectionDef>,
    by_name: HashMap<String, CollectionId>,
    extent_by_type: HashMap<TypeId, CollectionId>,
    indexes: Vec<IndexDef>,
    index_by_name: HashMap<String, IndexId>,
    /// Integrity constraints: all referents of a `Ref`/`RefSet` field are
    /// known to lie in the given collection. Lets the Mat→Join rule scan a
    /// (smaller) user set instead of the type extent.
    ref_domains: HashMap<FieldId, CollectionId>,
    /// Average number of elements in a `RefSet` field — the fan-out used
    /// by Unnest cardinality estimation.
    fanouts: HashMap<FieldId, f64>,
    /// Collected attribute statistics, keyed by `(collection, reference
    /// path, terminal attribute)` — the selectivity refinement the paper
    /// lists as future work.
    histograms: HashMap<(CollectionId, Vec<FieldId>, FieldId), crate::stats::Histogram>,
    /// Monotonic statistics epoch. Bumped whenever the statistics or the
    /// physical design behind this catalog change (histogram collection,
    /// index rebuilds, catalog replacement), so cached plans keyed on the
    /// epoch go stale *lazily* — no cache walk on invalidation.
    stats_epoch: u64,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a collection. Extents are also recorded in the
    /// type → extent map (at most one extent per type).
    pub fn add_collection(&mut self, def: CollectionDef) -> CollectionId {
        assert!(
            !self.by_name.contains_key(&def.name),
            "duplicate collection {:?}",
            def.name
        );
        let id = CollectionId::from_index(self.collections.len());
        if def.kind == CollectionKind::Extent {
            let prev = self.extent_by_type.insert(def.elem_type, id);
            assert!(prev.is_none(), "type already has an extent");
        }
        self.by_name.insert(def.name.clone(), id);
        self.collections.push(def);
        id
    }

    /// Registers an index.
    pub fn add_index(&mut self, def: IndexDef) -> IndexId {
        assert!(
            !self.index_by_name.contains_key(&def.name),
            "duplicate index {:?}",
            def.name
        );
        let id = IndexId::from_index(self.indexes.len());
        self.index_by_name.insert(def.name.clone(), id);
        self.indexes.push(def);
        id
    }

    /// Collection definition.
    pub fn collection(&self, id: CollectionId) -> &CollectionDef {
        &self.collections[id.index()]
    }

    /// Looks a collection up by name.
    pub fn collection_by_name(&self, name: &str) -> Option<CollectionId> {
        self.by_name.get(name).copied()
    }

    /// All collections.
    pub fn collections(&self) -> impl Iterator<Item = (CollectionId, &CollectionDef)> {
        self.collections
            .iter()
            .enumerate()
            .map(|(i, c)| (CollectionId::from_index(i), c))
    }

    /// The extent of a type, if the type has one. Per the paper's prototype,
    /// this is the only way the optimizer learns the population size of a
    /// type; types without extents (e.g. `Plant`) are cardinality-blind.
    pub fn extent_of(&self, ty: TypeId) -> Option<CollectionId> {
        self.extent_by_type.get(&ty).copied()
    }

    /// Index definition.
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, id: IndexId) -> &IndexDef {
        &self.indexes[id.index()]
    }

    /// Looks an index up by name.
    pub fn index_by_name(&self, name: &str) -> Option<IndexId> {
        self.index_by_name.get(name).copied()
    }

    /// All indexes.
    pub fn indexes(&self) -> impl Iterator<Item = (IndexId, &IndexDef)> {
        self.indexes
            .iter()
            .enumerate()
            .map(|(i, d)| (IndexId::from_index(i), d))
    }

    /// Indexes over a given collection.
    pub fn indexes_on(&self, coll: CollectionId) -> impl Iterator<Item = (IndexId, &IndexDef)> {
        self.indexes_on_filtered(coll, |_| true)
    }

    fn indexes_on_filtered<F: Fn(&IndexDef) -> bool>(
        &self,
        coll: CollectionId,
        f: F,
    ) -> impl Iterator<Item = (IndexId, &IndexDef)> {
        self.indexes
            .iter()
            .enumerate()
            .filter(move |(_, d)| d.collection == coll && f(d))
            .map(|(i, d)| (IndexId::from_index(i), d))
    }

    /// Finds an index on `coll` whose `(path, key)` matches exactly — the
    /// lookup the collapse-to-index-scan rule performs.
    pub fn find_index(
        &self,
        coll: CollectionId,
        path: &[FieldId],
        key: FieldId,
    ) -> Option<(IndexId, &IndexDef)> {
        self.indexes_on(coll)
            .find(|(_, d)| d.path == path && d.key == key)
    }

    /// Declares that every referent of `field` lies in `coll` (an
    /// integrity constraint the generator upholds).
    pub fn set_ref_domain(&mut self, field: FieldId, coll: CollectionId) {
        self.ref_domains.insert(field, coll);
    }

    /// The declared referent domain of a reference field, if any.
    pub fn ref_domain(&self, field: FieldId) -> Option<CollectionId> {
        self.ref_domains.get(&field).copied()
    }

    /// Records the average cardinality of a set-valued field.
    pub fn set_fanout(&mut self, field: FieldId, avg: f64) {
        self.fanouts.insert(field, avg);
    }

    /// Average cardinality of a set-valued field. Without a recorded
    /// statistic the optimizer assumes a fan-out of 5 (in the same naïve
    /// spirit as the paper's 10% default selectivity).
    pub fn fanout(&self, field: FieldId) -> f64 {
        self.fanouts.get(&field).copied().unwrap_or(5.0)
    }

    /// Attaches a collected histogram for `(coll, path, key)`.
    pub fn set_histogram(
        &mut self,
        coll: CollectionId,
        path: Vec<FieldId>,
        key: FieldId,
        h: crate::stats::Histogram,
    ) {
        self.histograms.insert((coll, path, key), h);
    }

    /// Collected statistics for an attribute path, if any.
    pub fn histogram(
        &self,
        coll: CollectionId,
        path: &[FieldId],
        key: FieldId,
    ) -> Option<&crate::stats::Histogram> {
        self.histograms.get(&(coll, path.to_vec(), key))
    }

    /// Number of collected histograms.
    pub fn histogram_count(&self) -> usize {
        self.histograms.len()
    }

    /// Every collected histogram with its `(collection, path, key)` key.
    /// Iteration order is unspecified (serializers must sort). Exposed for
    /// the durability checkpoint codec.
    pub fn histograms(
        &self,
    ) -> impl Iterator<
        Item = (
            (CollectionId, &[FieldId], FieldId),
            &crate::stats::Histogram,
        ),
    > {
        self.histograms
            .iter()
            .map(|((c, p, k), h)| ((*c, p.as_slice(), *k), h))
    }

    /// Every declared referent-domain constraint. Iteration order is
    /// unspecified (serializers must sort).
    pub fn ref_domains(&self) -> impl Iterator<Item = (FieldId, CollectionId)> + '_ {
        self.ref_domains.iter().map(|(&f, &c)| (f, c))
    }

    /// Every recorded set-valued fan-out. Iteration order is unspecified
    /// (serializers must sort).
    pub fn fanouts(&self) -> impl Iterator<Item = (FieldId, f64)> + '_ {
        self.fanouts.iter().map(|(&f, &v)| (f, v))
    }

    /// Returns a copy of this catalog with only the named indexes retained —
    /// the index-availability sweep of Table 3.
    pub fn with_only_indexes(&self, keep: &[&str]) -> Catalog {
        let mut out = self.clone();
        out.indexes.clear();
        out.index_by_name.clear();
        for d in &self.indexes {
            if keep.contains(&d.name.as_str()) {
                out.add_index(d.clone());
            }
        }
        out.bump_stats_epoch();
        out
    }

    /// The current statistics epoch. Plan-cache keys include this value;
    /// any statistics or physical-design change bumps it, so entries
    /// cached under an older epoch can never be served again.
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch
    }

    /// Advances the statistics epoch. Called by the storage layer after
    /// histogram collection, index (re)builds, and catalog replacement.
    pub fn bump_stats_epoch(&mut self) {
        self.stats_epoch += 1;
    }

    /// Forces the epoch to be at least `floor` (used when a replacement
    /// catalog must stay monotonic w.r.t. the one it replaces).
    pub fn raise_stats_epoch_to(&mut self, floor: u64) {
        self.stats_epoch = self.stats_epoch.max(floor);
    }

    /// A 64-bit FNV-1a fingerprint of the index *set*: every descriptor's
    /// name, collection, path, key, and clustering, in catalog order.
    /// Plan-cache keys include it so adding or dropping an index changes
    /// the key even if the statistics epoch were somehow left untouched.
    pub fn index_set_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for d in &self.indexes {
            eat(d.name.as_bytes());
            eat(&(d.collection.0).to_le_bytes());
            for f in &d.path {
                eat(&(f.index() as u32).to_le_bytes());
            }
            eat(&(d.key.index() as u32).to_le_bytes());
            eat(&[d.clustered as u8, b';']);
        }
        h
    }

    /// Number of 4 KB-equivalent pages a dense scan of the collection
    /// touches, given a page size. ("Objects in user-defined sets and type
    /// extents are assumed to be densely packed on pages.")
    pub fn pages_of(&self, id: CollectionId, page_bytes: u32) -> u64 {
        let c = self.collection(id);
        let per_page = (page_bytes / c.obj_bytes.max(1)).max(1) as u64;
        c.cardinality.div_ceil(per_page)
    }
}

/// Validates that every index in the catalog is well-formed against a
/// schema: path links are reference fields on the right types and the key
/// is an attribute. Returns a list of human-readable problems.
pub fn validate_catalog(schema: &Schema, catalog: &Catalog) -> Vec<String> {
    let mut problems = Vec::new();
    for (_, idx) in catalog.indexes() {
        let coll = catalog.collection(idx.collection);
        let mut ty = coll.elem_type;
        for &link in &idx.path {
            let f = schema.field(link);
            if !schema.is_subtype(ty, f.owner) {
                problems.push(format!(
                    "index {:?}: link {:?} not a field of {:?}",
                    idx.name,
                    f.name,
                    schema.ty(ty).name
                ));
            }
            match f.kind.target() {
                Some(t) => ty = t,
                None => {
                    problems.push(format!(
                        "index {:?}: link {:?} is not a reference field",
                        idx.name, f.name
                    ));
                    break;
                }
            }
        }
        let key = schema.field(idx.key);
        if !schema.is_subtype(ty, key.owner) {
            problems.push(format!(
                "index {:?}: key {:?} not a field of {:?}",
                idx.name,
                key.name,
                schema.ty(ty).name
            ));
        }
        if !key.kind.is_attr() {
            problems.push(format!(
                "index {:?}: key {:?} is not an attribute",
                idx.name, key.name
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, FieldKind, Schema};

    fn setup() -> (Schema, Catalog) {
        let mut b = Schema::builder();
        let person = b.add_type("Person", None);
        b.add_field(person, "name", FieldKind::Attr(AttrType::Str));
        let city = b.add_type("City", None);
        b.add_field(city, "mayor", FieldKind::Ref(person));
        let schema = b.build();

        let mut cat = Catalog::new();
        cat.add_collection(CollectionDef {
            name: "Cities".into(),
            elem_type: city,
            kind: CollectionKind::UserSet,
            cardinality: 10_000,
            obj_bytes: 200,
        });
        cat.add_collection(CollectionDef {
            name: "extent(Person)".into(),
            elem_type: person,
            kind: CollectionKind::Extent,
            cardinality: 100_000,
            obj_bytes: 100,
        });
        (schema, cat)
    }

    #[test]
    fn extent_lookup_by_type() {
        let (schema, cat) = setup();
        let person = schema.type_by_name("Person").unwrap();
        let city = schema.type_by_name("City").unwrap();
        assert!(cat.extent_of(person).is_some());
        assert!(cat.extent_of(city).is_none(), "City has no extent");
    }

    #[test]
    fn path_index_found_by_shape() {
        let (schema, mut cat) = setup();
        let city = schema.type_by_name("City").unwrap();
        let person = schema.type_by_name("Person").unwrap();
        let mayor = schema.field_by_name(city, "mayor").unwrap();
        let name = schema.field_by_name(person, "name").unwrap();
        let cities = cat.collection_by_name("Cities").unwrap();
        cat.add_index(IndexDef {
            name: "Cities_mayor_name".into(),
            collection: cities,
            path: vec![mayor],
            key: name,
            distinct_keys: 5000,
            clustered: false,
        });
        assert!(cat.find_index(cities, &[mayor], name).is_some());
        assert!(cat.find_index(cities, &[], name).is_none());
        assert!(validate_catalog(&schema, &cat).is_empty());
    }

    #[test]
    fn invalid_index_reported() {
        let (schema, mut cat) = setup();
        let city = schema.type_by_name("City").unwrap();
        let mayor = schema.field_by_name(city, "mayor").unwrap();
        let cities = cat.collection_by_name("Cities").unwrap();
        // Key is a reference field, not an attribute: invalid.
        cat.add_index(IndexDef {
            name: "bad".into(),
            collection: cities,
            path: vec![],
            key: mayor,
            distinct_keys: 1,
            clustered: false,
        });
        assert_eq!(validate_catalog(&schema, &cat).len(), 1);
    }

    #[test]
    fn with_only_indexes_filters() {
        let (schema, mut cat) = setup();
        let city = schema.type_by_name("City").unwrap();
        let person = schema.type_by_name("Person").unwrap();
        let mayor = schema.field_by_name(city, "mayor").unwrap();
        let name = schema.field_by_name(person, "name").unwrap();
        let cities = cat.collection_by_name("Cities").unwrap();
        cat.add_index(IndexDef {
            name: "i1".into(),
            collection: cities,
            path: vec![mayor],
            key: name,
            distinct_keys: 10,
            clustered: false,
        });
        cat.add_index(IndexDef {
            name: "i2".into(),
            collection: cities,
            path: vec![],
            key: name,
            distinct_keys: 10,
            clustered: false,
        });
        let only = cat.with_only_indexes(&["i2"]);
        assert_eq!(only.indexes().count(), 1);
        assert!(only.index_by_name("i2").is_some());
        assert!(only.index_by_name("i1").is_none());
    }

    #[test]
    fn pages_of_dense_packing() {
        let (_, cat) = setup();
        let cities = cat.collection_by_name("Cities").unwrap();
        // 4096 / 200 = 20 objects per page; 10_000 / 20 = 500 pages.
        assert_eq!(cat.pages_of(cities, 4096), 500);
    }
}
