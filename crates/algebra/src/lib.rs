//! # `oodb-algebra` — logical and physical algebra of the Open OODB optimizer
//!
//! The paper's key representational decision is to separate the rich "user"
//! algebra (complex arguments) from a *simple-argument* optimizable algebra.
//! This crate is that second algebra:
//!
//! * **Scope variables** ([`scope`]): every `Get`, `Mat`, and `Unnest`
//!   introduces a named variable ("an object component gets into scope
//!   either by being scanned or by being referenced"); all operator
//!   arguments refer to variables by [`VarId`].
//! * **Predicates** ([`pred`]): interned conjunctions of simple comparison
//!   terms — no nested path expressions survive simplification.
//! * **Logical operators** ([`ops::LogicalOp`]): `Get`, `Select`,
//!   `Project`, `Join`, `Unnest`, the novel `Mat` (materialize), and the
//!   set operators.
//! * **Physical operators** ([`ops::PhysicalOp`]): file/index scan, filter,
//!   hybrid hash join, pointer join, assembly (with its window), and
//!   friends.
//! * **Properties** ([`props`]): logical properties (scope + cardinality)
//!   and the physical property *presence in memory* that drives the paper's
//!   goal-directed search.
//! * **Plan trees and display** ([`plan`], [`display`]): standalone
//!   input/output trees rendered in the paper's figure notation.

#![forbid(unsafe_code)]

pub mod builder;
pub mod display;
pub mod fingerprint;
pub mod interval;
pub mod ops;
pub mod overlay;
pub mod plan;
pub mod pred;
pub mod props;
pub mod scope;

pub use builder::QueryBuilder;
pub use fingerprint::{fingerprint, QueryFingerprint};
pub use interval::{CardInterval, INTERVAL_SLACK};
pub use ops::{LogicalOp, PhysicalOp, SetOpKind};
pub use overlay::StatsOverlay;
pub use plan::{LogicalPlan, PhysicalPlan, PlanEst};
pub use pred::{CmpOp, Operand, Pred, PredArena, PredId, Term};
pub use props::{LogicalProps, PhysProps, SortSpec, VarSet};
pub use scope::{ScopeArena, ScopeVar, VarId, VarOrigin};

/// Shared query context: schema + catalog + interned scopes and predicates.
///
/// Memo expressions store only ids; everything resolves through a
/// `QueryEnv`. One env per query being optimized.
#[derive(Clone, Debug)]
pub struct QueryEnv {
    /// The database schema.
    pub schema: oodb_object::Schema,
    /// The catalog (statistics + indexes) the optimizer sees.
    pub catalog: oodb_object::Catalog,
    /// Scope variables of this query.
    pub scopes: ScopeArena,
    /// Interned predicates of this query.
    pub preds: PredArena,
}

impl QueryEnv {
    /// Creates an empty environment over a schema and catalog.
    pub fn new(schema: oodb_object::Schema, catalog: oodb_object::Catalog) -> Self {
        QueryEnv {
            schema,
            catalog,
            scopes: ScopeArena::default(),
            preds: PredArena::default(),
        }
    }

    /// The collection that bounds the population a variable ranges over:
    /// its `Get` collection, or — for materialized/unnested components —
    /// the reference field's declared domain or the target type's extent.
    /// `None` when the catalog knows nothing (the paper's `Plant`).
    pub fn var_domain(&self, v: VarId) -> Option<oodb_object::CollectionId> {
        let sv = self.scopes.var(v);
        match sv.origin {
            VarOrigin::Get(coll) => Some(coll),
            VarOrigin::Mat { src, field } => match field {
                Some(f) => self
                    .catalog
                    .ref_domain(f)
                    .or_else(|| self.catalog.extent_of(sv.ty)),
                None => match self.scopes.var(src).origin {
                    VarOrigin::Unnest { field, .. } => self
                        .catalog
                        .ref_domain(field)
                        .or_else(|| self.catalog.extent_of(sv.ty)),
                    _ => self.catalog.extent_of(sv.ty),
                },
            },
            VarOrigin::Unnest { field, .. } => self
                .catalog
                .ref_domain(field)
                .or_else(|| self.catalog.extent_of(sv.ty)),
        }
    }
}
