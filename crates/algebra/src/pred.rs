//! Predicates with *simple* arguments.
//!
//! "We have designed our logical algebra so that as much as possible of the
//! query semantics is captured in the algebraic operators ... while the
//! operator arguments are as simple as possible." After simplification a
//! predicate is a conjunction of comparison terms whose operands are:
//! a constant, an embedded attribute of an in-scope variable, the OID of an
//! in-scope variable, or a single-valued reference field read as an OID.
//! Path expressions never appear — each link became a `Mat` operator.
//!
//! Predicates are interned in a [`PredArena`] so that structurally equal
//! predicates share a [`PredId`]; memo deduplication then falls out of id
//! equality.

use crate::scope::VarId;
use oodb_object::{FieldId, Value};
use oodb_sync::AppendVec;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, PoisonError};

/// Identifier of an interned predicate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(u32);

impl PredId {
    /// Constructs from a raw arena index (tests/tools; normal code gets
    /// ids from [`PredArena::intern`]).
    pub fn from_index(i: usize) -> Self {
        PredId(i as u32)
    }
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PredId({})", self.0)
    }
}

/// Comparison operators (the paper's queries use `==` and `>=`; all six
/// are supported).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the operator against an ordering.
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with sides swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Conversion to the dependency-free [`oodb_object::value::CmpLike`]
    /// shape used by storage-level range scans.
    pub fn as_cmp_like(self) -> oodb_object::value::CmpLike {
        use oodb_object::value::CmpLike as C;
        match self {
            CmpOp::Eq => C::Eq,
            CmpOp::Ne => C::Ne,
            CmpOp::Lt => C::Lt,
            CmpOp::Le => C::Le,
            CmpOp::Gt => C::Gt,
            CmpOp::Ge => C::Ge,
        }
    }

    /// Rendered symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A simple operand.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A constant.
    Const(Value),
    /// Embedded attribute of an in-scope variable (`c.name`). Reading it
    /// requires the variable's object to be present in memory.
    Attr {
        /// The in-scope variable.
        var: VarId,
        /// An embedded attribute field.
        field: FieldId,
    },
    /// The identity (OID) of an in-scope variable (`d` compared as an
    /// object, or `n.self` in the paper's join notation). Identity travels
    /// with the tuple, so no memory presence is required.
    VarOid(VarId),
    /// A single-valued reference field read as an OID (`e.dept` on the
    /// left of `e.dept == d`). Requires the owning object in memory.
    RefField {
        /// The in-scope variable.
        var: VarId,
        /// A single-valued reference field.
        field: FieldId,
    },
    /// The reference value held by an `Unnest` output variable (`m` in
    /// `m == e.self`). Travels with the tuple; no memory needed.
    VarRef(VarId),
}

impl Operand {
    /// The variable whose *object state* must be in memory to evaluate
    /// this operand, if any.
    pub fn mem_var(&self) -> Option<VarId> {
        match self {
            Operand::Attr { var, .. } | Operand::RefField { var, .. } => Some(*var),
            Operand::Const(_) | Operand::VarOid(_) | Operand::VarRef(_) => None,
        }
    }

    /// Any variable this operand mentions.
    pub fn var(&self) -> Option<VarId> {
        match self {
            Operand::Attr { var, .. }
            | Operand::RefField { var, .. }
            | Operand::VarOid(var)
            | Operand::VarRef(var) => Some(*var),
            Operand::Const(_) => None,
        }
    }
}

/// One comparison term.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Term {
    /// Left operand.
    pub left: Operand,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: Operand,
}

impl Term {
    /// True when this term equates a reference (field or unnested value)
    /// with an object's identity — the shape the Mat→Join rule produces
    /// and pointer-based join algorithms exploit. Returns
    /// `(ref_operand_side_is_left, target_var)`.
    pub fn as_ref_eq(&self) -> Option<(bool, VarId)> {
        if self.op != CmpOp::Eq {
            return None;
        }
        match (&self.left, &self.right) {
            (Operand::RefField { .. } | Operand::VarRef(_), Operand::VarOid(t)) => Some((true, *t)),
            (Operand::VarOid(t), Operand::RefField { .. } | Operand::VarRef(_)) => {
                Some((false, *t))
            }
            _ => None,
        }
    }
}

/// A conjunction of terms. The empty conjunction is `true`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Pred {
    /// Conjuncts.
    pub terms: Vec<Term>,
}

impl Pred {
    /// Single-term predicate.
    pub fn term(t: Term) -> Self {
        Pred { terms: vec![t] }
    }
}

/// Interning arena for predicates.
///
/// Interior mutability lets *transformation rules* — which see the query
/// environment through a shared reference during search — intern the
/// predicates their rewrites need (conjunct splitting, the Mat→Join
/// reference equality). Each parsed query gets its own arena inside its
/// [`QueryEnv`], so interning is effectively single-writer; but cached
/// plans capture their env and are executed from many worker threads at
/// once, which makes *lookup* the hot cross-thread path — it runs once
/// per tuple during predicate evaluation.
///
/// The arena therefore stores predicates in an append-only
/// [`AppendVec`] whose slots never move: [`PredArena::pred`] is
/// lock-free (three atomic loads) and returns `&Pred` directly, no lock
/// and no clone. Writers (interning) serialize on a small mutex that
/// readers never touch, and the mutex is poison-recovering, so a
/// panicking rule thread can never wedge or poison the arena for
/// others.
///
/// [`QueryEnv`]: crate::QueryEnv
#[derive(Debug, Default)]
pub struct PredArena {
    /// Published predicates, indexed by [`PredId`]; addresses are stable.
    preds: AppendVec<Pred>,
    /// Dedup table guarding appends (structure → existing id).
    interned: Mutex<HashMap<Pred, PredId>>,
}

impl Clone for PredArena {
    fn clone(&self) -> Self {
        // Holding the intern lock pins the (map, preds) pair: appends
        // also run under it, so the clone is a consistent snapshot.
        let interned = self.interned.lock().unwrap_or_else(PoisonError::into_inner);
        PredArena {
            preds: self.preds.clone(),
            interned: Mutex::new(interned.clone()),
        }
    }
}

impl PredArena {
    /// Interns a predicate, returning the shared id for its structure.
    pub fn intern(&self, p: Pred) -> PredId {
        let mut interned = self.interned.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(&id) = interned.get(&p) {
            return id;
        }
        let id = PredId(self.preds.len() as u32);
        interned.insert(p.clone(), id);
        self.preds.push(p);
        id
    }

    /// Convenience: intern a single comparison.
    pub fn cmp(&self, left: Operand, op: CmpOp, right: Operand) -> PredId {
        self.intern(Pred::term(Term { left, op, right }))
    }

    /// Looks a predicate up. Lock-free; the reference is stable for the
    /// arena's lifetime (slots never move), so per-tuple evaluation
    /// pays no lock and no clone.
    pub fn pred(&self, id: PredId) -> &Pred {
        self.preds
            .get(id.index())
            .expect("PredId out of range for this arena")
    }

    /// Variables mentioned anywhere in the predicate.
    pub fn vars_used(&self, id: PredId) -> Vec<VarId> {
        let mut out = Vec::new();
        for t in &self.pred(id).terms {
            out.extend(t.left.var());
            out.extend(t.right.var());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Variables whose object state must be present in memory to evaluate
    /// the predicate.
    pub fn mem_vars(&self, id: PredId) -> Vec<VarId> {
        let mut out = Vec::new();
        for t in &self.pred(id).terms {
            out.extend(t.left.mem_var());
            out.extend(t.right.mem_var());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of interned predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }
    fn f(i: usize) -> FieldId {
        FieldId::from_index(i)
    }

    #[test]
    fn interning_shares_ids() {
        let arena = PredArena::default();
        let a = arena.cmp(
            Operand::Attr {
                var: v(0),
                field: f(1),
            },
            CmpOp::Eq,
            Operand::Const(Value::str("Joe")),
        );
        let b = arena.cmp(
            Operand::Attr {
                var: v(0),
                field: f(1),
            },
            CmpOp::Eq,
            Operand::Const(Value::str("Joe")),
        );
        let c = arena.cmp(
            Operand::Attr {
                var: v(0),
                field: f(1),
            },
            CmpOp::Eq,
            Operand::Const(Value::str("Ann")),
        );
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn mem_vars_skip_identity_operands() {
        let arena = PredArena::default();
        // e.dept == d : reading e.dept needs e in memory; d is identity only.
        let p = arena.cmp(
            Operand::RefField {
                var: v(0),
                field: f(0),
            },
            CmpOp::Eq,
            Operand::VarOid(v(1)),
        );
        assert_eq!(arena.mem_vars(p), vec![v(0)]);
        assert_eq!(arena.vars_used(p), vec![v(0), v(1)]);
    }

    #[test]
    fn ref_eq_detection() {
        let t = Term {
            left: Operand::RefField {
                var: v(0),
                field: f(0),
            },
            op: CmpOp::Eq,
            right: Operand::VarOid(v(1)),
        };
        assert_eq!(t.as_ref_eq(), Some((true, v(1))));
        let flipped = Term {
            left: Operand::VarOid(v(1)),
            op: CmpOp::Eq,
            right: Operand::VarRef(v(2)),
        };
        assert_eq!(flipped.as_ref_eq(), Some((false, v(1))));
        let not_ref = Term {
            left: Operand::Attr {
                var: v(0),
                field: f(0),
            },
            op: CmpOp::Eq,
            right: Operand::Const(Value::Int(3)),
        };
        assert_eq!(not_ref.as_ref_eq(), None);
    }

    #[test]
    fn cmp_op_semantics() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Ge.test(Equal));
        assert!(CmpOp::Ge.test(Greater));
        assert!(!CmpOp::Ge.test(Less));
        assert!(CmpOp::Ne.test(Less));
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
    }
}
