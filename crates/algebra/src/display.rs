//! Figure-style rendering of plans.
//!
//! Unary chains render as the paper's vertical figures:
//!
//! ```text
//! Select c.mayor.name == "Joe"
//! |
//! Mat c.mayor
//! |
//! Get Cities: c
//! ```
//!
//! Binary operators indent their inputs with tree connectors.

use crate::ops::{LogicalOp, PhysicalOp};
use crate::plan::{LogicalPlan, PhysicalPlan};
use crate::pred::{Operand, PredId};
use crate::scope::{VarId, VarOrigin};
use crate::QueryEnv;
use std::fmt::Write as _;

/// Renders an operand (`c.mayor.name`, `"Joe"`, `d.self`).
pub fn render_operand(env: &QueryEnv, o: &Operand) -> String {
    match o {
        Operand::Const(v) => format!("{v}"),
        Operand::Attr { var, field } => format!(
            "{}.{}",
            env.scopes.var(*var).label,
            env.schema.field(*field).name
        ),
        Operand::VarOid(v) => format!("{}.self", env.scopes.var(*v).name),
        Operand::RefField { var, field } => format!(
            "{}.{}",
            env.scopes.var(*var).label,
            env.schema.field(*field).name
        ),
        Operand::VarRef(v) => env.scopes.var(*v).name.clone(),
    }
}

/// Renders a predicate (`a == b and c >= d`).
pub fn render_pred(env: &QueryEnv, pred: PredId) -> String {
    let p = env.preds.pred(pred);
    if p.terms.is_empty() {
        return "true".to_string();
    }
    p.terms
        .iter()
        .map(|t| {
            format!(
                "{} {} {}",
                render_operand(env, &t.left),
                t.op.symbol(),
                render_operand(env, &t.right)
            )
        })
        .collect::<Vec<_>>()
        .join(" and ")
}

fn render_var_intro(env: &QueryEnv, out: VarId, op_name: &str) -> String {
    let v = env.scopes.var(out);
    match v.origin {
        VarOrigin::Get(coll) => format!(
            "{op_name} {}: {}",
            env.catalog.collection(coll).name,
            v.name
        ),
        VarOrigin::Mat { .. } | VarOrigin::Unnest { .. } => {
            if v.label == v.name {
                format!("{op_name} {}", v.label)
            } else {
                format!("{op_name} {}: {}", v.label, v.name)
            }
        }
    }
}

/// One-line description of a logical operator.
pub fn render_logical_op(env: &QueryEnv, op: &LogicalOp) -> String {
    match op {
        LogicalOp::Get { coll, var } => format!(
            "Get {}: {}",
            env.catalog.collection(*coll).name,
            env.scopes.var(*var).name
        ),
        LogicalOp::Select { pred } => format!("Select {}", render_pred(env, *pred)),
        LogicalOp::Project { items } => format!(
            "Project {}",
            items
                .iter()
                .map(|i| render_operand(env, i))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        LogicalOp::Join { pred } => format!("Join {}", render_pred(env, *pred)),
        LogicalOp::Mat { out } => render_var_intro(env, *out, "Mat"),
        LogicalOp::Unnest { out } => render_var_intro(env, *out, "Unnest"),
        LogicalOp::SetOp { kind } => kind.name().to_string(),
    }
}

/// One-line description of a physical operator.
pub fn render_physical_op(env: &QueryEnv, op: &PhysicalOp) -> String {
    match op {
        PhysicalOp::FileScan { coll, var } => format!(
            "File Scan {}: {}",
            env.catalog.collection(*coll).name,
            env.scopes.var(*var).name
        ),
        PhysicalOp::IndexScan { index, var, pred } => format!(
            "Index Scan {}: {}, {}",
            env.catalog
                .collection(env.catalog.index(*index).collection)
                .name,
            env.scopes.var(*var).name,
            render_pred(env, *pred)
        ),
        PhysicalOp::Filter { pred } => format!("Filter {}", render_pred(env, *pred)),
        PhysicalOp::HybridHashJoin { pred } => {
            format!("Hybrid Hash Join {}", render_pred(env, *pred))
        }
        PhysicalOp::PointerJoin { pred } => format!("Pointer Join {}", render_pred(env, *pred)),
        PhysicalOp::Assembly { targets, window } => {
            let t = targets
                .iter()
                .map(|v| env.scopes.var(*v).label.clone())
                .collect::<Vec<_>>()
                .join(", ");
            if *window == 1 {
                format!("Assembly {t} (window 1)")
            } else {
                format!("Assembly {t}")
            }
        }
        PhysicalOp::WarmAssembly { target } => {
            format!("Warm Assembly {}", env.scopes.var(*target).label)
        }
        PhysicalOp::AlgProject { items } => format!(
            "Alg-Project {}",
            items
                .iter()
                .map(|i| render_operand(env, i))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        PhysicalOp::AlgUnnest { out } => render_var_intro(env, *out, "Alg-Unnest"),
        PhysicalOp::HashSetOp { .. } => op.name().to_string(),
        PhysicalOp::MergeJoin { pred } => format!("Merge Join {}", render_pred(env, *pred)),
        PhysicalOp::Sort { key } => format!(
            "Sort by {}.{}",
            env.scopes.var(key.var).label,
            env.schema.field(key.field).name
        ),
    }
}

fn render_tree<T>(
    out: &mut String,
    node: &T,
    line: &dyn Fn(&T) -> String,
    children: &dyn Fn(&T) -> &[T],
    indent: &str,
) {
    let _ = writeln!(out, "{}", line(node));
    let kids = children(node);
    match kids.len() {
        0 => {}
        1 => {
            let _ = writeln!(out, "{indent}|");
            let mut sub = String::new();
            render_tree(&mut sub, &kids[0], line, children, indent);
            for l in sub.lines() {
                let _ = writeln!(out, "{indent}{l}");
            }
        }
        _ => {
            for (i, k) in kids.iter().enumerate() {
                let last = i == kids.len() - 1;
                let (hook, pad) = if last {
                    ("`-- ", "    ")
                } else {
                    ("|-- ", "|   ")
                };
                let mut sub = String::new();
                render_tree(&mut sub, k, line, children, indent);
                for (j, l) in sub.lines().enumerate() {
                    if j == 0 {
                        let _ = writeln!(out, "{indent}{hook}{l}");
                    } else {
                        let _ = writeln!(out, "{indent}{pad}{l}");
                    }
                }
            }
        }
    }
}

/// Renders a logical plan in figure style.
pub fn render_logical(env: &QueryEnv, plan: &LogicalPlan) -> String {
    let mut out = String::new();
    render_tree(
        &mut out,
        plan,
        &|p: &LogicalPlan| render_logical_op(env, &p.op),
        &|p: &LogicalPlan| &p.children,
        "",
    );
    out
}

/// Renders a physical plan in figure style.
pub fn render_physical(env: &QueryEnv, plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    render_tree(
        &mut out,
        plan,
        &|p: &PhysicalPlan| render_physical_op(env, &p.op),
        &|p: &PhysicalPlan| &p.children,
        "",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use oodb_object::paper::paper_model;
    use oodb_object::Value;

    #[test]
    fn figure8_rendering() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (matd, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
        let pred = qb.eq_const(cm, m.ids.person_name, Value::str("Joe"));
        let q = qb.select(matd, pred);
        let text = render_logical(qb.env(), &q);
        let expected = "Select c.mayor.name == \"Joe\"\n|\nMat c.mayor: cm\n|\nGet Cities: c\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn join_renders_as_tree() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (emp, e) = qb.get(m.ids.employees, "e");
        let (dept, d) = qb.get(m.ids.department_extent, "d");
        let pred = qb.ref_eq(e, m.ids.emp_dept, d);
        let q = qb.join(emp, dept, pred);
        let text = render_logical(qb.env(), &q);
        assert!(text.starts_with("Join e.dept == d.self\n"));
        assert!(text.contains("|-- Get Employees: e"));
        assert!(text.contains("`-- Get extent(Department): d"));
    }
}
