//! Logical and physical properties.
//!
//! "Logical properties are properties of an expression determined by the
//! logical operators before execution algorithms are chosen (e.g., type or
//! size of intermediate results). Physical properties depend on execution
//! algorithms selected. ... In object-oriented query processing, an
//! important property is **presence in memory**."
//!
//! Physical properties drive the Volcano search top-down: "the search
//! process considers only those subplans that can deliver the physical
//! properties that are required by the algorithm of the containing plan."

use crate::scope::VarId;
use std::fmt;

/// A set of scope variables, as a 64-bit bitset (queries are limited to 64
/// variables by [`crate::ScopeArena`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct VarSet(u64);

impl VarSet {
    /// The empty set.
    pub const EMPTY: VarSet = VarSet(0);

    /// Singleton set.
    pub fn single(v: VarId) -> Self {
        VarSet(1u64 << v.index())
    }

    /// Builds from an iterator of variables. (Not the trait method: this
    /// is an inherent constructor usable without importing `FromIterator`.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(vars: impl IntoIterator<Item = VarId>) -> Self {
        let mut s = VarSet::EMPTY;
        for v in vars {
            s = s.insert(v);
        }
        s
    }

    /// Set with `v` added.
    #[must_use]
    pub fn insert(self, v: VarId) -> Self {
        VarSet(self.0 | (1u64 << v.index()))
    }

    /// Set with `v` removed.
    #[must_use]
    pub fn remove(self, v: VarId) -> Self {
        VarSet(self.0 & !(1u64 << v.index()))
    }

    /// Membership test.
    pub fn contains(self, v: VarId) -> bool {
        self.0 & (1u64 << v.index()) != 0
    }

    /// Union.
    #[must_use]
    pub fn union(self, other: VarSet) -> Self {
        VarSet(self.0 | other.0)
    }

    /// Intersection.
    #[must_use]
    pub fn intersect(self, other: VarSet) -> Self {
        VarSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(self, other: VarSet) -> Self {
        VarSet(self.0 & !other.0)
    }

    /// Subset test.
    pub fn is_subset(self, other: VarSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Emptiness.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of members.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates members in index order.
    pub fn iter(self) -> impl Iterator<Item = VarId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(VarId::from_index(i as usize))
            }
        })
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "v{}", v.index())?;
        }
        write!(f, "}}")
    }
}

/// Logical properties of an expression: which variables are in scope and
/// the estimated output cardinality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogicalProps {
    /// Variables in scope in the output.
    pub vars: VarSet,
    /// Estimated number of output tuples.
    pub card: f64,
    /// Estimated bytes per output tuple (drives hash-table spill
    /// estimation).
    pub bytes: f64,
}

/// A sort order: tuples ordered by one attribute of one in-scope variable
/// (ascending). "The standard example for a physical property in
/// relational query optimization is the sort order" — the 1993 prototype
/// left it out ("it supports only presence in memory"); this reproduction
/// includes it to demonstrate that the property vector extends without
/// touching the search engine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SortSpec {
    /// The variable whose attribute orders the output.
    pub var: VarId,
    /// The ordering attribute.
    pub field: oodb_object::FieldId,
}

/// The physical property vector: presence in memory (the paper's central
/// property) plus an optional sort order (our extension).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub struct PhysProps {
    /// Variables whose objects must be present in memory.
    pub in_memory: VarSet,
    /// Required/delivered tuple order, if any.
    pub order: Option<SortSpec>,
}

impl PhysProps {
    /// No requirements.
    pub const NONE: PhysProps = PhysProps {
        in_memory: VarSet::EMPTY,
        order: None,
    };

    /// Requires the given variables in memory (no ordering).
    pub fn in_memory(vars: VarSet) -> Self {
        PhysProps {
            in_memory: vars,
            order: None,
        }
    }

    /// Adds an ordering requirement.
    #[must_use]
    pub fn ordered(self, order: SortSpec) -> Self {
        PhysProps {
            order: Some(order),
            ..self
        }
    }

    /// Whether `delivered` satisfies `self` as a requirement: memory is
    /// covered and any required order is delivered exactly.
    pub fn satisfied_by(self, delivered: PhysProps) -> bool {
        self.in_memory.is_subset(delivered.in_memory)
            && match self.order {
                None => true,
                Some(o) => delivered.order == Some(o),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn varset_algebra() {
        let a = VarSet::from_iter([v(0), v(2), v(5)]);
        let b = VarSet::from_iter([v(2), v(3)]);
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersect(b), VarSet::single(v(2)));
        assert_eq!(a.difference(b), VarSet::from_iter([v(0), v(5)]));
        assert!(VarSet::single(v(2)).is_subset(a));
        assert!(!a.is_subset(b));
        assert!(a.contains(v(5)));
        assert!(!a.contains(v(1)));
    }

    #[test]
    fn varset_iteration_in_order() {
        let s = VarSet::from_iter([v(5), v(1), v(3)]);
        let got: Vec<usize> = s.iter().map(|x| x.index()).collect();
        assert_eq!(got, vec![1, 3, 5]);
    }

    #[test]
    fn varset_insert_remove_roundtrip() {
        let s = VarSet::EMPTY.insert(v(7)).insert(v(9)).remove(v(7));
        assert_eq!(s, VarSet::single(v(9)));
        assert!(s.remove(v(3)) == s, "removing absent member is a no-op");
    }

    #[test]
    fn physprops_satisfaction() {
        let req = PhysProps::in_memory(VarSet::from_iter([v(0), v(1)]));
        let exact = PhysProps::in_memory(VarSet::from_iter([v(0), v(1)]));
        let more = PhysProps::in_memory(VarSet::from_iter([v(0), v(1), v(2)]));
        let less = PhysProps::in_memory(VarSet::single(v(0)));
        assert!(req.satisfied_by(exact));
        assert!(req.satisfied_by(more), "extra delivery is fine");
        assert!(!req.satisfied_by(less));
        assert!(PhysProps::NONE.satisfied_by(less));
    }
}
