//! Scope variables.
//!
//! "The scoping rules in the optimizer input algebra are very simple. An
//! object component gets into scope either by being scanned (captured using
//! the logical `Get` operator ...) or by being referenced (captured in the
//! `Mat` operator). Components remain in scope until a projection discards
//! them."
//!
//! Every variable records its *origin* — how it entered scope. Origins are
//! what let the assembly enforcer materialize a missing component at any
//! point in a plan: a variable with origin `Mat { src, field }` can be
//! brought into memory whenever `src` already is.

use oodb_object::{CollectionId, FieldId, TypeId};
use std::fmt;

/// Index of a scope variable within a query's [`ScopeArena`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(u32);

impl VarId {
    /// Constructs from a raw arena index.
    pub fn from_index(i: usize) -> Self {
        VarId(i as u32)
    }
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VarId({})", self.0)
    }
}

/// How a variable entered scope.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum VarOrigin {
    /// Scanned from a collection (`Get Cities: c`).
    Get(CollectionId),
    /// Materialized through a reference (`Mat c.mayor`): `field == None`
    /// dereferences the reference value held by `src` itself (the form
    /// produced after an `Unnest`, e.g. `Mat m.employee: e`).
    Mat {
        /// The variable whose reference is followed.
        src: VarId,
        /// The single-valued reference field, or `None` to dereference a
        /// reference-valued variable directly.
        field: Option<FieldId>,
    },
    /// Revealed by unnesting a set-valued field (`Unnest t.team_members`).
    /// The variable holds *references*, not objects; a subsequent `Mat`
    /// resolves them.
    Unnest {
        /// The variable owning the set-valued field.
        src: VarId,
        /// The set-valued field.
        field: FieldId,
    },
}

/// A scope variable.
#[derive(Clone, Debug)]
pub struct ScopeVar {
    /// Short name (`c`, `e`, `m`, ...).
    pub name: String,
    /// Pretty path label for figure-style rendering (`c.mayor`,
    /// `m.employee`); equals `name` unless set explicitly.
    pub label: String,
    /// Type of the objects (or referenced objects) this variable ranges
    /// over.
    pub ty: TypeId,
    /// How the variable entered scope.
    pub origin: VarOrigin,
}

impl ScopeVar {
    /// Whether the variable holds raw references (an `Unnest` output)
    /// rather than objects. Reference values travel inside tuples, so they
    /// are trivially "present in memory" and never need enforcement.
    pub fn is_ref(&self) -> bool {
        matches!(self.origin, VarOrigin::Unnest { .. })
    }
}

/// Arena of a query's scope variables.
#[derive(Clone, Debug, Default)]
pub struct ScopeArena {
    vars: Vec<ScopeVar>,
}

impl ScopeArena {
    /// Registers a variable; panics past 64 variables (the [`crate::VarSet`]
    /// width — far beyond any practical query).
    pub fn add(&mut self, name: &str, ty: TypeId, origin: VarOrigin) -> VarId {
        self.add_labeled(name, name, ty, origin)
    }

    /// Registers a variable with a distinct figure label (e.g. name `e`,
    /// label `m.employee`).
    pub fn add_labeled(&mut self, name: &str, label: &str, ty: TypeId, origin: VarOrigin) -> VarId {
        assert!(self.vars.len() < 64, "more than 64 scope variables");
        let id = VarId::from_index(self.vars.len());
        self.vars.push(ScopeVar {
            name: name.to_string(),
            label: label.to_string(),
            ty,
            origin,
        });
        id
    }

    /// Variable metadata.
    pub fn var(&self, id: VarId) -> &ScopeVar {
        &self.vars[id.index()]
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when no variables are registered.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// All variables.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &ScopeVar)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId::from_index(i), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origins_and_ref_flag() {
        let mut arena = ScopeArena::default();
        let ty = TypeId::from_index(0);
        let coll = CollectionId::from_index(0);
        let c = arena.add("c", ty, VarOrigin::Get(coll));
        let m = arena.add(
            "m",
            ty,
            VarOrigin::Unnest {
                src: c,
                field: FieldId::from_index(0),
            },
        );
        let e = arena.add(
            "e",
            ty,
            VarOrigin::Mat {
                src: m,
                field: None,
            },
        );
        assert!(!arena.var(c).is_ref());
        assert!(arena.var(m).is_ref());
        assert!(!arena.var(e).is_ref());
        assert_eq!(arena.len(), 3);
    }
}
