//! Convenience builder for hand-constructing simplified algebra queries.
//!
//! The ZQL front end produces the same trees via simplification; the
//! builder exists so benches, tests, and examples can state the paper's
//! queries directly in their Figure 5 / Figure 8 / Figure 12 form.

use crate::ops::{LogicalOp, SetOpKind};
use crate::plan::LogicalPlan;
use crate::pred::{CmpOp, Operand, Pred, PredId, Term};
use crate::scope::{VarId, VarOrigin};
use crate::QueryEnv;
use oodb_object::{Catalog, CollectionId, FieldId, Schema, Value};

/// Builds simplified-algebra queries against a schema + catalog.
#[derive(Debug)]
pub struct QueryBuilder {
    env: QueryEnv,
}

impl QueryBuilder {
    /// Starts a query over the given schema and catalog.
    pub fn new(schema: Schema, catalog: Catalog) -> Self {
        QueryBuilder {
            env: QueryEnv::new(schema, catalog),
        }
    }

    /// The environment built so far (shared context for optimization and
    /// rendering).
    pub fn env(&self) -> &QueryEnv {
        &self.env
    }

    /// Consumes the builder, yielding the environment.
    pub fn into_env(self) -> QueryEnv {
        self.env
    }

    /// `Get <collection>: <name>` — scan a collection.
    pub fn get(&mut self, coll: CollectionId, name: &str) -> (LogicalPlan, VarId) {
        let ty = self.env.catalog.collection(coll).elem_type;
        let var = self.env.scopes.add(name, ty, VarOrigin::Get(coll));
        (LogicalPlan::leaf(LogicalOp::Get { coll, var }), var)
    }

    /// `Mat <src>.<field>` — bring a referenced component into scope. The
    /// new variable is labeled `src.field` and named `name`.
    pub fn mat(
        &mut self,
        input: LogicalPlan,
        src: VarId,
        field: FieldId,
        name: &str,
    ) -> (LogicalPlan, VarId) {
        let fd = self.env.schema.field(field);
        let ty = fd
            .kind
            .target()
            .expect("Mat field must be a single-valued reference");
        let label = format!("{}.{}", self.env.scopes.var(src).name, fd.name);
        let out = self.env.scopes.add_labeled(
            name,
            &label,
            ty,
            VarOrigin::Mat {
                src,
                field: Some(field),
            },
        );
        (LogicalPlan::unary(LogicalOp::Mat { out }, input), out)
    }

    /// `Mat <src>: <name>` — dereference a reference-valued variable (the
    /// form following an `Unnest`, e.g. `Mat m.employee: e`).
    pub fn mat_deref(
        &mut self,
        input: LogicalPlan,
        src: VarId,
        name: &str,
    ) -> (LogicalPlan, VarId) {
        let sv = self.env.scopes.var(src);
        let ty = sv.ty;
        let label = format!("{}.{}", sv.name, self.env.schema.ty(ty).name.to_lowercase());
        let out =
            self.env
                .scopes
                .add_labeled(name, &label, ty, VarOrigin::Mat { src, field: None });
        (LogicalPlan::unary(LogicalOp::Mat { out }, input), out)
    }

    /// `Unnest <src>.<field>: <name>` — reveal set-valued references.
    pub fn unnest(
        &mut self,
        input: LogicalPlan,
        src: VarId,
        field: FieldId,
        name: &str,
    ) -> (LogicalPlan, VarId) {
        let fd = self.env.schema.field(field);
        let ty = fd
            .kind
            .target()
            .expect("Unnest field must be a set-valued reference");
        let label = format!("{}.{}", self.env.scopes.var(src).name, fd.name);
        let out = self
            .env
            .scopes
            .add_labeled(name, &label, ty, VarOrigin::Unnest { src, field });
        (LogicalPlan::unary(LogicalOp::Unnest { out }, input), out)
    }

    /// `Select <pred>`.
    pub fn select(&mut self, input: LogicalPlan, pred: PredId) -> LogicalPlan {
        LogicalPlan::unary(LogicalOp::Select { pred }, input)
    }

    /// `Join <pred>`.
    pub fn join(&mut self, left: LogicalPlan, right: LogicalPlan, pred: PredId) -> LogicalPlan {
        LogicalPlan::binary(LogicalOp::Join { pred }, left, right)
    }

    /// `Project <items>`.
    pub fn project(&mut self, input: LogicalPlan, items: Vec<Operand>) -> LogicalPlan {
        LogicalPlan::unary(LogicalOp::Project { items }, input)
    }

    /// Set operation.
    pub fn set_op(
        &mut self,
        kind: SetOpKind,
        left: LogicalPlan,
        right: LogicalPlan,
    ) -> LogicalPlan {
        LogicalPlan::binary(LogicalOp::SetOp { kind }, left, right)
    }

    // ----- predicate helpers -------------------------------------------------

    /// Operand: embedded attribute `var.field`.
    pub fn attr(&self, var: VarId, field: FieldId) -> Operand {
        Operand::Attr { var, field }
    }

    /// Interns `var.field <op> constant`.
    pub fn cmp_const(&mut self, var: VarId, field: FieldId, op: CmpOp, v: Value) -> PredId {
        self.env
            .preds
            .cmp(Operand::Attr { var, field }, op, Operand::Const(v))
    }

    /// Interns `var.field == constant`.
    pub fn eq_const(&mut self, var: VarId, field: FieldId, v: Value) -> PredId {
        self.cmp_const(var, field, CmpOp::Eq, v)
    }

    /// Interns attribute equality `a.fa == b.fb`.
    pub fn eq_attr(&mut self, a: VarId, fa: FieldId, b: VarId, fb: FieldId) -> PredId {
        self.env.preds.cmp(
            Operand::Attr { var: a, field: fa },
            CmpOp::Eq,
            Operand::Attr { var: b, field: fb },
        )
    }

    /// Interns reference equality `src.field == target.self` (the paper's
    /// `e.department() == d`).
    pub fn ref_eq(&mut self, src: VarId, field: FieldId, target: VarId) -> PredId {
        self.env.preds.cmp(
            Operand::RefField { var: src, field },
            CmpOp::Eq,
            Operand::VarOid(target),
        )
    }

    /// Interns reference-value equality `m == target.self` (unnested
    /// member joined against a scan).
    pub fn deref_eq(&mut self, src: VarId, target: VarId) -> PredId {
        self.env
            .preds
            .cmp(Operand::VarRef(src), CmpOp::Eq, Operand::VarOid(target))
    }

    /// Interns a conjunction of already-built terms.
    pub fn conj(&mut self, terms: Vec<Term>) -> PredId {
        self.env.preds.intern(Pred { terms })
    }

    /// A comparison term (not interned) for use with [`QueryBuilder::conj`].
    pub fn term(&self, left: Operand, op: CmpOp, right: Operand) -> Term {
        Term { left, op, right }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oodb_object::paper::paper_model;

    #[test]
    fn build_query2_shape() {
        // SELECT City c in Cities WHERE c.mayor().name() == "Joe"
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (matd, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
        let pred = qb.eq_const(cm, m.ids.person_name, Value::str("Joe"));
        let q = qb.select(matd, pred);

        assert_eq!(q.size(), 3);
        assert!(matches!(q.op, LogicalOp::Select { .. }));
        assert!(matches!(q.children[0].op, LogicalOp::Mat { .. }));
        assert!(matches!(
            q.children[0].children[0].op,
            LogicalOp::Get { .. }
        ));
        let env = qb.env();
        assert_eq!(env.scopes.var(cm).label, "c.mayor");
        assert_eq!(env.preds.mem_vars(pred), vec![cm]);
    }

    #[test]
    fn unnest_then_deref_shape() {
        // Figure 3: Mat m.employee: e over Unnest t.team_members: m over Get Tasks: t
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (tasks, t) = qb.get(m.ids.tasks, "t");
        let (unn, mm) = qb.unnest(tasks, t, m.ids.task_team_members, "m");
        let (matd, e) = qb.mat_deref(unn, mm, "e");
        assert_eq!(matd.size(), 3);
        let env = qb.env();
        assert!(env.scopes.var(mm).is_ref());
        assert!(!env.scopes.var(e).is_ref());
        assert_eq!(env.scopes.var(e).ty, m.ids.employee);
        assert_eq!(env.scopes.var(mm).ty, m.ids.employee);
        let _ = t;
    }

    #[test]
    #[should_panic(expected = "single-valued reference")]
    fn mat_on_attr_panics() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let _ = qb.mat(cities, c, m.ids.city_name, "bad");
    }
}
