//! Interval cardinality bounds.
//!
//! A [`CardInterval`] is a sound `[lo, hi]` bound on the number of rows an
//! operator can produce, derived from catalog statistics and operator
//! semantics alone — never from selectivity guesses. Estimates live
//! *inside* their interval when the cost model is feasible; measured row
//! counts live inside it when the statistics are fresh. The plan auditor
//! (`oodb-verify`) propagates intervals bottom-up through logical and
//! physical plans and flags anything that escapes its bound: an estimate
//! outside `[lo, hi]` is a cost-model bug, an *actual* count outside it is
//! stale statistics — the static half of feedback-driven re-optimization.

use std::fmt;

/// Relative slack used by [`CardInterval::contains`]: estimates are chains
/// of `f64` arithmetic, so exact endpoint comparisons would trip on
/// rounding.
pub const INTERVAL_SLACK: f64 = 1e-6;

/// A closed interval `[lo, hi]` of row counts (`hi` may be `+∞`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CardInterval {
    /// Smallest row count the operator can produce.
    pub lo: f64,
    /// Largest row count the operator can produce (`f64::INFINITY` when no
    /// bound is derivable, e.g. below an unnest of unknown fan-out).
    pub hi: f64,
}

impl CardInterval {
    /// The vacuous bound `[0, ∞)`.
    pub const UNBOUNDED: CardInterval = CardInterval {
        lo: 0.0,
        hi: f64::INFINITY,
    };

    /// A new interval. `lo` is clamped into `[0, hi]` so a malformed
    /// construction degrades to a weaker (still sound) bound rather than
    /// an inverted one.
    pub fn new(lo: f64, hi: f64) -> Self {
        let hi = hi.max(0.0);
        CardInterval {
            lo: lo.max(0.0).min(hi),
            hi,
        }
    }

    /// The degenerate interval `[n, n]` — the count is known exactly.
    pub fn exact(n: f64) -> Self {
        Self::new(n, n)
    }

    /// `[0, hi]` — only an upper bound is derivable.
    pub fn at_most(hi: f64) -> Self {
        Self::new(0.0, hi)
    }

    /// Drops the lower bound: `[0, hi]`. A selective operator (filter,
    /// join predicate) can eliminate every row, whatever its input
    /// guarantees.
    #[must_use]
    pub fn relax_lo(self) -> Self {
        CardInterval { lo: 0.0, ..self }
    }

    /// Caps the upper bound at `hi` (containment argument: e.g. a
    /// reference equi-join against a distinct build side emits at most one
    /// row per probe row).
    #[must_use]
    pub fn cap(self, hi: f64) -> Self {
        Self::new(self.lo.min(hi), self.hi.min(hi))
    }

    /// Interval of a cross product: `[lo·lo, hi·hi]`. An empty side wins
    /// over an unbounded one (`0 · ∞ = 0` here: zero input rows mean zero
    /// output rows whatever the other side could produce).
    #[must_use]
    pub fn cross(self, other: Self) -> Self {
        fn mul(a: f64, b: f64) -> f64 {
            if a == 0.0 || b == 0.0 {
                0.0
            } else {
                a * b
            }
        }
        Self::new(mul(self.lo, other.lo), mul(self.hi, other.hi))
    }

    /// Interval of a disjoint concatenation: `[lo+lo, hi+hi]`.
    #[must_use]
    pub fn sum(self, other: Self) -> Self {
        Self::new(self.lo + other.lo, self.hi + other.hi)
    }

    /// Whether `x` lies inside the interval, allowing
    /// [`INTERVAL_SLACK`]-relative rounding at both endpoints. Non-finite
    /// `x` is never inside (a NaN estimate is a violation, not a wildcard).
    pub fn contains(self, x: f64) -> bool {
        if !x.is_finite() {
            return false;
        }
        let lo_ok = x >= self.lo * (1.0 - INTERVAL_SLACK) - INTERVAL_SLACK;
        let hi_ok = self.hi.is_infinite() || x <= self.hi * (1.0 + INTERVAL_SLACK) + INTERVAL_SLACK;
        lo_ok && hi_ok
    }

    /// Whether the interval carries any information beyond `[0, ∞)`.
    pub fn is_informative(self) -> bool {
        self.lo > 0.0 || self.hi.is_finite()
    }
}

impl fmt::Display for CardInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hi.is_infinite() {
            write!(f, "[{}, ∞)", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_clamp() {
        let i = CardInterval::new(5.0, 3.0);
        assert!(i.lo <= i.hi, "inverted bounds degrade, never invert: {i}");
        let e = CardInterval::exact(7.0);
        assert_eq!((e.lo, e.hi), (7.0, 7.0));
        assert_eq!(CardInterval::at_most(9.0).lo, 0.0);
    }

    #[test]
    fn containment_with_slack() {
        let i = CardInterval::new(10.0, 100.0);
        assert!(i.contains(10.0) && i.contains(100.0));
        assert!(i.contains(100.0 + 5e-5), "slack admits rounding");
        assert!(!i.contains(101.0));
        assert!(!i.contains(9.0));
        assert!(!i.contains(f64::NAN));
        assert!(CardInterval::UNBOUNDED.contains(1e18));
        assert!(!CardInterval::UNBOUNDED.contains(f64::INFINITY));
    }

    #[test]
    fn algebra() {
        let a = CardInterval::new(2.0, 4.0);
        let b = CardInterval::new(3.0, 5.0);
        assert_eq!(a.cross(b), CardInterval::new(6.0, 20.0));
        assert_eq!(a.sum(b), CardInterval::new(5.0, 9.0));
        assert_eq!(a.relax_lo(), CardInterval::new(0.0, 4.0));
        assert_eq!(a.cap(3.0), CardInterval::new(2.0, 3.0));
        assert_eq!(b.cap(2.0), CardInterval::new(2.0, 2.0));
    }

    #[test]
    fn display_and_information() {
        assert_eq!(CardInterval::new(1.0, 8.0).to_string(), "[1, 8]");
        assert_eq!(CardInterval::UNBOUNDED.to_string(), "[0, ∞)");
        assert!(!CardInterval::UNBOUNDED.is_informative());
        assert!(CardInterval::at_most(3.0).is_informative());
    }
}
