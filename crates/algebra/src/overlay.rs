//! Observed-selectivity overlays for feedback-driven re-optimization.
//!
//! The feedback loop never mutates the catalog: observed selectivities are
//! carried in a [`StatsOverlay`] — an immutable map from canonical
//! *predicate keys* to observed selectivity fractions — that the cost
//! model consults before falling back to catalog statistics. Epoch
//! snapshots, the plan-space auditor, and every other catalog reader stay
//! sound because the catalog they see is unchanged; only the estimates of
//! the one re-optimization run are corrected.
//!
//! Predicate keys ([`pred_key`]) are stable across plan shapes and query
//! respellings: variables are identified by their *origin chain* (the
//! collection they scan, or the reference path that materialized them),
//! not by [`crate::VarId`] interning order, and terms are canonicalized
//! exactly like [`crate::fingerprint`] does (symmetric comparisons
//! sorted, `>`/`>=` flipped, conjuncts sorted). The key for the
//! single-term predicate on an index scan therefore equals the key the
//! same term gets inside a larger filter conjunction.

use crate::fingerprint::fnv1a;
use crate::pred::{CmpOp, Operand, Pred};
use crate::scope::{VarId, VarOrigin};
use crate::QueryEnv;
use std::collections::BTreeMap;

/// Selectivities below this floor are clamped up; a zero would zero out
/// every downstream estimate and below ~1e-9 the difference is noise.
pub const MIN_OVERLAY_SEL: f64 = 1e-9;

/// A set of observed-selectivity overrides keyed by canonical predicate
/// key ([`pred_key`]). Values are fractions in `[1e-9, 1.0]` — the
/// observed rows-out/rows-in ratio of the predicate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsOverlay {
    overrides: BTreeMap<String, f64>,
}

impl StatsOverlay {
    /// An empty overlay (no overrides; fingerprint 0).
    pub fn new() -> Self {
        StatsOverlay::default()
    }

    /// Records an observed selectivity for a predicate key, clamped to
    /// `[`[`MIN_OVERLAY_SEL`]`, 1.0]`. Non-finite observations are
    /// ignored — a NaN must never poison the cost model.
    pub fn set(&mut self, key: impl Into<String>, sel: f64) {
        if !sel.is_finite() {
            return;
        }
        self.overrides
            .insert(key.into(), sel.clamp(MIN_OVERLAY_SEL, 1.0));
    }

    /// The observed selectivity for a predicate key, if recorded.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.overrides.get(key).copied()
    }

    /// True when the overlay carries no overrides.
    pub fn is_empty(&self) -> bool {
        self.overrides.is_empty()
    }

    /// Number of overrides.
    pub fn len(&self) -> usize {
        self.overrides.len()
    }

    /// Iterates `(key, selectivity)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.overrides.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// A deterministic 64-bit fingerprint of the override set, for plan
    /// cache keys: `0` for the empty overlay (the catalog-only world), and
    /// an FNV-1a hash over the sorted `(key, selectivity-bits)` pairs
    /// otherwise. Two overlays with equal contents always collide; the
    /// empty overlay never collides with a non-empty one because the hash
    /// seed is nonzero and at least one byte is fed.
    pub fn fingerprint(&self) -> u64 {
        if self.overrides.is_empty() {
            return 0;
        }
        let mut buf = Vec::with_capacity(self.overrides.len() * 24);
        for (k, v) in &self.overrides {
            buf.extend_from_slice(k.as_bytes());
            buf.push(b'=');
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
            buf.push(b';');
        }
        fnv1a(&buf).max(1)
    }
}

/// The origin-chain path of a variable: the collection it scans, or the
/// reference path that brought it into scope (`Employees.dept`,
/// `Tasks[team_members].*`). Unlike `$n` fingerprint numbering this is
/// independent of plan shape, so a key computed from a physical operator
/// after optimization matches the key computed from the logical predicate
/// before it.
pub fn var_path(env: &QueryEnv, v: VarId) -> String {
    match env.scopes.var(v).origin {
        VarOrigin::Get(coll) => env.catalog.collection(coll).name.clone(),
        VarOrigin::Mat { src, field } => {
            let mut p = var_path(env, src);
            match field {
                Some(f) => {
                    p.push('.');
                    p.push_str(&env.schema.field(f).name);
                }
                None => p.push_str(".*"),
            }
            p
        }
        VarOrigin::Unnest { src, field } => {
            let mut p = var_path(env, src);
            p.push('[');
            p.push_str(&env.schema.field(field).name);
            p.push(']');
            p
        }
    }
}

fn operand_key(env: &QueryEnv, o: &Operand) -> String {
    match o {
        Operand::Const(v) => format!("c:{v:?}"),
        Operand::Attr { var, field } => {
            format!(
                "a:{}.{}",
                var_path(env, *var),
                env.schema.field(*field).name
            )
        }
        Operand::VarOid(v) => format!("o:{}", var_path(env, *v)),
        Operand::RefField { var, field } => {
            format!(
                "r:{}.{}",
                var_path(env, *var),
                env.schema.field(*field).name
            )
        }
        Operand::VarRef(v) => format!("v:{}", var_path(env, *v)),
    }
}

/// The canonical key of one comparison term: operands by origin-chain
/// path, symmetric comparators operand-sorted, `>`/`>=` rewritten as
/// `<`/`<=` — the same normalizations [`crate::fingerprint`] applies, so
/// respellings of a term share a key.
pub fn term_key(env: &QueryEnv, term: &crate::pred::Term) -> String {
    let mut left = operand_key(env, &term.left);
    let mut right = operand_key(env, &term.right);
    let mut op = term.op;
    match op {
        CmpOp::Eq | CmpOp::Ne => {
            if left > right {
                std::mem::swap(&mut left, &mut right);
            }
        }
        CmpOp::Gt | CmpOp::Ge => {
            op = op.flipped();
            std::mem::swap(&mut left, &mut right);
        }
        CmpOp::Lt | CmpOp::Le => {}
    }
    left.push_str(op.symbol());
    left.push_str(&right);
    left
}

/// The canonical key of a conjunction: each term's [`term_key`], sorted
/// and `&`-joined. A single-term predicate's key equals its term key, so
/// an index-scan residual and the same term inside a filter share one
/// override.
pub fn pred_key(env: &QueryEnv, pred: &Pred) -> String {
    let mut terms: Vec<String> = pred.terms.iter().map(|t| term_key(env, t)).collect();
    terms.sort_unstable();
    terms.join("&")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::{Operand, Term};
    use crate::QueryBuilder;
    use oodb_object::paper::paper_model;
    use oodb_object::Value;

    #[test]
    fn keys_erase_variable_identity_and_term_order() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (_cities, c) = qb.get(m.ids.cities, "c");
        let (_cities2, x) = qb.get(m.ids.cities, "renamed");
        let env = qb.into_env();
        let t = |var, n: i64| Term {
            left: Operand::Attr {
                var,
                field: m.ids.city_population,
            },
            op: CmpOp::Eq,
            right: Operand::Const(Value::Int(n)),
        };
        // Same collection, different VarId, flipped operand order: one key.
        let a = term_key(&env, &t(c, 7));
        let flipped = Term {
            left: Operand::Const(Value::Int(7)),
            op: CmpOp::Eq,
            right: Operand::Attr {
                var: x,
                field: m.ids.city_population,
            },
        };
        assert_eq!(a, term_key(&env, &flipped));
        // Conjunct order is erased.
        let p1 = Pred {
            terms: vec![t(c, 1), t(c, 2)],
        };
        let p2 = Pred {
            terms: vec![t(c, 2), t(c, 1)],
        };
        assert_eq!(pred_key(&env, &p1), pred_key(&env, &p2));
    }

    #[test]
    fn mat_var_paths_follow_the_origin_chain() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let (_matd, cm) = qb.mat(cities, c, m.ids.city_mayor, "cm");
        let env = qb.into_env();
        assert_eq!(var_path(&env, c), "Cities");
        assert_eq!(var_path(&env, cm), "Cities.mayor");
    }

    #[test]
    fn fingerprint_is_content_addressed_and_zero_only_when_empty() {
        let mut a = StatsOverlay::new();
        assert_eq!(a.fingerprint(), 0);
        a.set("k1", 0.5);
        let mut b = StatsOverlay::new();
        b.set("k1", 0.5);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), 0);
        b.set("k1", 0.25);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn set_clamps_and_rejects_non_finite() {
        let mut o = StatsOverlay::new();
        o.set("a", f64::NAN);
        o.set("b", f64::INFINITY);
        assert!(o.is_empty());
        o.set("c", -3.0);
        o.set("d", 7.0);
        assert_eq!(o.get("c"), Some(MIN_OVERLAY_SEL));
        assert_eq!(o.get("d"), Some(1.0));
    }
}
