//! Canonical query fingerprints for plan caching.
//!
//! A fingerprint normalizes a simplified [`LogicalPlan`] into a stable
//! structural key (and a 64-bit hash of it) so that *textual variants of
//! the same query collide*: variable names, interning order of predicates,
//! the order of terms inside a conjunction, and the spelling of symmetric
//! comparisons are all erased. Two queries with equal fingerprints are
//! optimizer-equivalent — the same winning plan (modulo variable identity)
//! is valid for both.
//!
//! Normalizations applied:
//!
//! * **Variable canonicalization** — user-chosen names and `VarId`
//!   interning order are replaced by `$0, $1, ...` assigned in a
//!   deterministic pre-order walk of the plan (each `Get`/`Mat`/`Unnest`
//!   numbers the variable it introduces). `SELECT c FROM City c ...` and
//!   `SELECT x FROM City x ...` collide.
//! * **Conjunct ordering** — the terms of each conjunctive predicate are
//!   rendered individually and sorted, so `a == 1 AND b == 2` collides
//!   with `b == 2 AND a == 1`.
//! * **Symmetric-comparison ordering** — `Eq`/`Ne` operands are sorted
//!   lexicographically, and `Gt`/`Ge` are flipped to `Lt`/`Le`, so
//!   `1 == a.x` collides with `a.x == 1` and `a.x > 1` with `1 < a.x`.
//! * **Name-based encoding** — collections and fields appear by *name*
//!   (schema/catalog interning order is irrelevant), so fingerprints are
//!   stable across catalog rebuilds.
//!
//! Join child order is deliberately **not** canonicalized: a false cache
//! miss merely re-optimizes, while a false hit would serve a wrong plan,
//! so only rewrites that are provably identity-preserving are applied.

use crate::ops::LogicalOp;
use crate::plan::LogicalPlan;
use crate::pred::{CmpOp, Operand, PredId};
use crate::props::{SortSpec, VarSet};
use crate::scope::{VarId, VarOrigin};
use crate::QueryEnv;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A canonical fingerprint: a stable 64-bit hash plus the structural key
/// it was computed from. Cache lookups compare the full key on a hash
/// match, so hash collisions cost a miss, never a wrong plan.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryFingerprint {
    /// FNV-1a hash of [`QueryFingerprint::key`].
    pub hash: u64,
    /// The canonical structural encoding of the query.
    pub key: String,
}

/// Computes the canonical fingerprint of a simplified query: the plan
/// plus everything else that determines the winning physical plan — the
/// result variables and the requested output order.
pub fn fingerprint(
    env: &QueryEnv,
    plan: &LogicalPlan,
    result_vars: VarSet,
    order: Option<&SortSpec>,
) -> QueryFingerprint {
    let mut cx = Canonicalizer {
        env,
        canon: HashMap::new(),
        // One output buffer for the whole key; per-node allocation is the
        // dominant cost of fingerprinting on the cache-hit fast path.
        out: String::with_capacity(192),
    };
    // Number variables from the plan *structure* (introduction sites,
    // children first) before any predicate is rendered. Numbering by
    // first textual mention would let conjunct order leak into the
    // numbers and defeat the term sort below.
    cx.assign_vars(plan);
    cx.encode_plan(plan);
    cx.out.push_str("|vars[");
    let mut nums: Vec<usize> = result_vars.iter().map(|v| cx.var_num(v)).collect();
    nums.sort_unstable();
    for (i, n) in nums.iter().enumerate() {
        if i > 0 {
            cx.out.push(',');
        }
        let _ = write!(cx.out, "${n}");
    }
    cx.out.push(']');
    if let Some(s) = order {
        let n = cx.var_num(s.var);
        let _ = write!(cx.out, "|order(${n}.{})", cx.env.schema.field(s.field).name);
    }
    let key = cx.out;
    QueryFingerprint {
        hash: fnv1a(key.as_bytes()),
        key,
    }
}

/// FNV-1a over a byte string — deterministic across processes and builds,
/// unlike `std`'s `DefaultHasher` which is only stable within one process.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Canonicalizer<'e> {
    env: &'e QueryEnv,
    canon: HashMap<VarId, usize>,
    out: String,
}

impl Canonicalizer<'_> {
    /// Numbers every variable the plan introduces, children before
    /// parents, so numberings depend only on plan shape — never on
    /// `VarId` interning order, user-chosen names, or the order in which
    /// predicates happen to mention variables.
    fn assign_vars(&mut self, plan: &LogicalPlan) {
        for c in &plan.children {
            self.assign_vars(c);
        }
        match &plan.op {
            LogicalOp::Get { var, .. } => {
                self.var_num(*var);
            }
            LogicalOp::Mat { out } | LogicalOp::Unnest { out } => {
                self.var_num(*out);
            }
            LogicalOp::Select { .. }
            | LogicalOp::Project { .. }
            | LogicalOp::Join { .. }
            | LogicalOp::SetOp { .. } => {}
        }
    }

    /// Canonical number of `v` (assigned by [`Self::assign_vars`]; the
    /// assign-on-miss fallback only fires for variables a plan references
    /// without introducing, which well-formed plans do not do).
    fn var_num(&mut self, v: VarId) -> usize {
        let next = self.canon.len();
        *self.canon.entry(v).or_insert(next)
    }

    fn push_var(&mut self, v: VarId) {
        let n = self.var_num(v);
        let _ = write!(self.out, "${n}");
    }

    fn push_field(&mut self, f: oodb_object::FieldId) {
        // Field *names*, not ids: stable across schema re-interning.
        let name = &self.env.schema.field(f).name;
        self.out.push_str(name);
    }

    /// Streams `node[child;child]` into the shared buffer. Each node
    /// numbers the variables it mentions as they appear; children follow
    /// in order (never reordered — see the module doc on joins).
    fn encode_plan(&mut self, plan: &LogicalPlan) {
        match &plan.op {
            LogicalOp::Get { coll, var } => {
                self.out.push_str("get(");
                let name = &self.env.catalog.collection(*coll).name;
                self.out.push_str(name);
                self.out.push(',');
                self.push_var(*var);
                self.out.push(')');
            }
            LogicalOp::Select { pred } => {
                self.out.push_str("sel(");
                self.encode_pred(*pred);
                self.out.push(')');
            }
            LogicalOp::Project { items } => {
                self.out.push_str("proj(");
                for (i, o) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push(',');
                    }
                    self.encode_operand_into(o);
                }
                self.out.push(')');
            }
            LogicalOp::Join { pred } => {
                self.out.push_str("join(");
                self.encode_pred(*pred);
                self.out.push(')');
            }
            LogicalOp::Mat { out } => {
                let origin = self.env.scopes.var(*out).origin;
                let (src, field) = match origin {
                    VarOrigin::Mat { src, field } => (src, field),
                    other => panic!("Mat output var with non-Mat origin {other:?}"),
                };
                self.out.push_str("mat(");
                self.push_var(src);
                if let Some(f) = field {
                    self.out.push('.');
                    self.push_field(f);
                }
                self.out.push(',');
                self.push_var(*out);
                self.out.push(')');
            }
            LogicalOp::Unnest { out } => {
                let origin = self.env.scopes.var(*out).origin;
                let (src, field) = match origin {
                    VarOrigin::Unnest { src, field } => (src, field),
                    other => panic!("Unnest output var with non-Unnest origin {other:?}"),
                };
                self.out.push_str("unnest(");
                self.push_var(src);
                self.out.push('.');
                self.push_field(field);
                self.out.push(',');
                self.push_var(*out);
                self.out.push(')');
            }
            LogicalOp::SetOp { kind } => {
                let _ = write!(self.out, "setop({kind:?})");
            }
        }
        if !plan.children.is_empty() {
            self.out.push('[');
            for (i, c) in plan.children.iter().enumerate() {
                if i > 0 {
                    self.out.push(';');
                }
                self.encode_plan(c);
            }
            self.out.push(']');
        }
    }

    /// Conjunction encoding: each term rendered canonically, the term list
    /// sorted so conjunct order is erased. Terms are tiny, so buffering
    /// them individually for the sort is cheap; everything else streams.
    fn encode_pred(&mut self, pred: PredId) {
        let p = self.env.preds.pred(pred);
        let mut terms: Vec<String> = p
            .terms
            .iter()
            .map(|t| {
                let mut left = self.encode_operand(&t.left);
                let mut right = self.encode_operand(&t.right);
                let mut op = t.op;
                // Symmetric comparators: order operands canonically.
                // Strict/loose greater-than: rewrite as less-than.
                match op {
                    CmpOp::Eq | CmpOp::Ne => {
                        if left > right {
                            std::mem::swap(&mut left, &mut right);
                        }
                    }
                    CmpOp::Gt | CmpOp::Ge => {
                        op = op.flipped();
                        std::mem::swap(&mut left, &mut right);
                    }
                    CmpOp::Lt | CmpOp::Le => {}
                }
                left.push_str(op.symbol());
                left.push_str(&right);
                left
            })
            .collect();
        terms.sort_unstable();
        for (i, t) in terms.iter().enumerate() {
            if i > 0 {
                self.out.push('&');
            }
            self.out.push_str(t);
        }
    }

    fn encode_operand(&mut self, o: &Operand) -> String {
        match o {
            Operand::Const(v) => format!("c:{v:?}"),
            Operand::Attr { var, field } => {
                let n = self.var_num(*var);
                format!("a:${n}.{}", self.env.schema.field(*field).name)
            }
            Operand::VarOid(v) => format!("o:${}", self.var_num(*v)),
            Operand::RefField { var, field } => {
                let n = self.var_num(*var);
                format!("r:${n}.{}", self.env.schema.field(*field).name)
            }
            Operand::VarRef(v) => format!("v:${}", self.var_num(*v)),
        }
    }

    fn encode_operand_into(&mut self, o: &Operand) {
        let s = self.encode_operand(o);
        self.out.push_str(&s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryBuilder;
    use oodb_object::paper::paper_model;
    use oodb_object::Value;

    fn fp_of(src_like: impl FnOnce(&mut QueryBuilder) -> (LogicalPlan, VarId)) -> QueryFingerprint {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (plan, v) = src_like(&mut qb);
        let env = qb.into_env();
        fingerprint(&env, &plan, VarSet::single(v), None)
    }

    #[test]
    fn variable_names_are_erased() {
        let m = paper_model();
        let a = fp_of(|qb| {
            let (cities, c) = qb.get(m.ids.cities, "c");
            let pred = qb.eq_const(c, m.ids.city_population, Value::Int(1000));
            (qb.select(cities, pred), c)
        });
        let b = fp_of(|qb| {
            let (cities, x) = qb.get(m.ids.cities, "some_city");
            let pred = qb.eq_const(x, m.ids.city_population, Value::Int(1000));
            (qb.select(cities, pred), x)
        });
        assert_eq!(a, b, "renamed variable must not change the fingerprint");
    }

    #[test]
    fn conjunct_order_is_erased() {
        let m = paper_model();
        let mk = |flip: bool| {
            fp_of(|qb| {
                let (tasks, t) = qb.get(m.ids.tasks, "t");
                let t1 = qb.term(
                    Operand::Attr {
                        var: t,
                        field: m.ids.task_time,
                    },
                    CmpOp::Eq,
                    Operand::Const(Value::Int(100)),
                );
                let t2 = qb.term(
                    Operand::Attr {
                        var: t,
                        field: m.ids.task_time,
                    },
                    CmpOp::Lt,
                    Operand::Const(Value::Int(900)),
                );
                let pred = if flip {
                    qb.conj(vec![t2.clone(), t1.clone()])
                } else {
                    qb.conj(vec![t1, t2])
                };
                (qb.select(tasks, pred), t)
            })
        };
        assert_eq!(mk(false), mk(true));
    }

    #[test]
    fn symmetric_and_flipped_comparisons_collide() {
        let m = paper_model();
        let attr = |t| Operand::Attr {
            var: t,
            field: m.ids.task_time,
        };
        let c100 = Operand::Const(Value::Int(100));
        let eq_ab = fp_of(|qb| {
            let (tasks, t) = qb.get(m.ids.tasks, "t");
            let term = qb.term(attr(t), CmpOp::Eq, c100.clone());
            let pred = qb.conj(vec![term]);
            (qb.select(tasks, pred), t)
        });
        let eq_ba = fp_of(|qb| {
            let (tasks, t) = qb.get(m.ids.tasks, "t");
            let term = qb.term(c100.clone(), CmpOp::Eq, attr(t));
            let pred = qb.conj(vec![term]);
            (qb.select(tasks, pred), t)
        });
        assert_eq!(eq_ab, eq_ba, "Eq operand order must not matter");

        let gt = fp_of(|qb| {
            let (tasks, t) = qb.get(m.ids.tasks, "t");
            let term = qb.term(attr(t), CmpOp::Gt, c100.clone());
            let pred = qb.conj(vec![term]);
            (qb.select(tasks, pred), t)
        });
        let lt_flipped = fp_of(|qb| {
            let (tasks, t) = qb.get(m.ids.tasks, "t");
            let term = qb.term(c100.clone(), CmpOp::Lt, attr(t));
            let pred = qb.conj(vec![term]);
            (qb.select(tasks, pred), t)
        });
        assert_eq!(gt, lt_flipped, "x > c must collide with c < x");
    }

    #[test]
    fn conjunct_order_is_erased_across_variables() {
        // Terms over *different* variables: numbering must come from the
        // plan structure, not from whichever term mentions a variable
        // first, or reordering the conjunction would change the key.
        let m = paper_model();
        let mk = |flip: bool| {
            fp_of(|qb| {
                let (cities, c) = qb.get(m.ids.cities, "c");
                let (emps, e) = qb.get(m.ids.employees, "e");
                let t1 = qb.term(
                    Operand::Attr {
                        var: c,
                        field: m.ids.city_population,
                    },
                    CmpOp::Eq,
                    Operand::Const(Value::Int(5)),
                );
                let t2 = qb.term(
                    Operand::Attr {
                        var: e,
                        field: m.ids.person_name,
                    },
                    CmpOp::Eq,
                    Operand::Const(Value::str("Fred")),
                );
                let pred = if flip {
                    qb.conj(vec![t2.clone(), t1.clone()])
                } else {
                    qb.conj(vec![t1, t2])
                };
                let join = LogicalPlan::binary(LogicalOp::Join { pred }, cities, emps);
                (join, c)
            })
        };
        assert_eq!(mk(false), mk(true));
    }

    #[test]
    fn different_constants_do_not_collide() {
        let m = paper_model();
        let mk = |n: i64| {
            fp_of(|qb| {
                let (tasks, t) = qb.get(m.ids.tasks, "t");
                let term = qb.term(
                    Operand::Attr {
                        var: t,
                        field: m.ids.task_time,
                    },
                    CmpOp::Eq,
                    Operand::Const(Value::Int(n)),
                );
                let pred = qb.conj(vec![term]);
                (qb.select(tasks, pred), t)
            })
        };
        assert_ne!(mk(100), mk(200));
    }

    #[test]
    fn order_by_is_part_of_the_fingerprint() {
        let m = paper_model();
        let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
        let (cities, c) = qb.get(m.ids.cities, "c");
        let env = qb.into_env();
        let plain = fingerprint(&env, &cities, VarSet::single(c), None);
        let ordered = fingerprint(
            &env,
            &cities,
            VarSet::single(c),
            Some(&SortSpec {
                var: c,
                field: m.ids.city_population,
            }),
        );
        assert_ne!(plain, ordered);
    }

    #[test]
    fn join_child_order_is_preserved() {
        // Join commutativity is a transformation the *optimizer* explores;
        // the fingerprint must not equate the two orders (a wrong cache
        // hit would be unsound if it ever mattered, a miss never is).
        let m = paper_model();
        let mk = |swap: bool| {
            fp_of(|qb| {
                let (cities, c) = qb.get(m.ids.cities, "c");
                let (emps, e) = qb.get(m.ids.employees, "e");
                let term = qb.term(
                    Operand::RefField {
                        var: c,
                        field: m.ids.city_mayor,
                    },
                    CmpOp::Eq,
                    Operand::VarOid(e),
                );
                let pred = qb.conj(vec![term]);
                let (l, r) = if swap { (emps, cities) } else { (cities, emps) };
                (LogicalPlan::binary(LogicalOp::Join { pred }, l, r), c)
            })
        };
        assert_ne!(mk(false), mk(true));
    }
}
