//! Standalone plan trees.
//!
//! [`LogicalPlan`] is the optimizer's input (produced by query
//! simplification or the [`crate::QueryBuilder`]); [`PhysicalPlan`] is its
//! output, annotated per node with estimated cardinality and cost. Inside
//! the optimizer everything lives in the memo; these trees exist only at
//! the boundary.

use crate::ops::{LogicalOp, PhysicalOp};

/// A logical algebra expression tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogicalPlan {
    /// Operator at this node.
    pub op: LogicalOp,
    /// Inputs (`op.arity()` of them).
    pub children: Vec<LogicalPlan>,
}

impl LogicalPlan {
    /// A leaf node.
    pub fn leaf(op: LogicalOp) -> Self {
        debug_assert_eq!(op.arity(), 0);
        LogicalPlan {
            op,
            children: vec![],
        }
    }

    /// A unary node.
    pub fn unary(op: LogicalOp, child: LogicalPlan) -> Self {
        debug_assert_eq!(op.arity(), 1);
        LogicalPlan {
            op,
            children: vec![child],
        }
    }

    /// A binary node.
    pub fn binary(op: LogicalOp, left: LogicalPlan, right: LogicalPlan) -> Self {
        debug_assert_eq!(op.arity(), 2);
        LogicalPlan {
            op,
            children: vec![left, right],
        }
    }

    /// Total number of operators in the tree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(LogicalPlan::size).sum::<usize>()
    }

    /// Pre-order operator iteration.
    pub fn iter_ops(&self) -> Vec<&LogicalOp> {
        let mut out = vec![&self.op];
        for c in &self.children {
            out.extend(c.iter_ops());
        }
        out
    }
}

/// Per-node estimates attached to a physical plan.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlanEst {
    /// Estimated output tuples.
    pub out_card: f64,
    /// Estimated I/O seconds for *this* operator alone.
    pub io_s: f64,
    /// Estimated CPU seconds for *this* operator alone.
    pub cpu_s: f64,
}

impl PlanEst {
    /// Combined operator cost in seconds.
    pub fn op_total_s(&self) -> f64 {
        self.io_s + self.cpu_s
    }
}

/// A physical (execution) plan tree.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysicalPlan {
    /// Algorithm at this node.
    pub op: PhysicalOp,
    /// Inputs.
    pub children: Vec<PhysicalPlan>,
    /// Node estimates.
    pub est: PlanEst,
}

impl PhysicalPlan {
    /// Cumulative estimated cost of the whole subtree, in seconds.
    pub fn total_s(&self) -> f64 {
        self.est.op_total_s() + self.children.iter().map(PhysicalPlan::total_s).sum::<f64>()
    }

    /// Cumulative estimated I/O seconds.
    pub fn total_io_s(&self) -> f64 {
        self.est.io_s
            + self
                .children
                .iter()
                .map(PhysicalPlan::total_io_s)
                .sum::<f64>()
    }

    /// Cumulative estimated CPU seconds.
    pub fn total_cpu_s(&self) -> f64 {
        self.est.cpu_s
            + self
                .children
                .iter()
                .map(PhysicalPlan::total_cpu_s)
                .sum::<f64>()
    }

    /// Number of operators.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(PhysicalPlan::size).sum::<usize>()
    }

    /// Pre-order operator iteration.
    pub fn iter_ops(&self) -> Vec<&PhysicalOp> {
        let mut out = vec![&self.op];
        for c in &self.children {
            out.extend(c.iter_ops());
        }
        out
    }

    /// True if any operator in the tree satisfies the predicate — handy in
    /// tests asserting plan shape ("uses an index scan", "contains no
    /// assembly").
    pub fn contains_op(&self, f: &dyn Fn(&PhysicalOp) -> bool) -> bool {
        self.iter_ops().into_iter().any(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::SetOpKind;
    use crate::pred::PredId;
    use crate::scope::VarId;
    use oodb_object::CollectionId;

    fn get(i: usize) -> LogicalPlan {
        LogicalPlan::leaf(LogicalOp::Get {
            coll: CollectionId::from_index(i),
            var: VarId::from_index(i),
        })
    }

    #[test]
    fn tree_construction_and_size() {
        let t = LogicalPlan::binary(
            LogicalOp::SetOp {
                kind: SetOpKind::Union,
            },
            get(0),
            LogicalPlan::unary(
                LogicalOp::Mat {
                    out: VarId::from_index(2),
                },
                get(1),
            ),
        );
        assert_eq!(t.size(), 4);
        assert_eq!(t.iter_ops().len(), 4);
    }

    #[test]
    fn physical_cost_accumulates() {
        let leaf = PhysicalPlan {
            op: PhysicalOp::FileScan {
                coll: CollectionId::from_index(0),
                var: VarId::from_index(0),
            },
            children: vec![],
            est: PlanEst {
                out_card: 100.0,
                io_s: 1.0,
                cpu_s: 0.5,
            },
        };
        let root = PhysicalPlan {
            op: PhysicalOp::Filter {
                pred: PredId::from_index(0),
            },
            children: vec![leaf],
            est: PlanEst {
                out_card: 10.0,
                io_s: 0.0,
                cpu_s: 0.25,
            },
        };
        assert!((root.total_s() - 1.75).abs() < 1e-12);
        assert!((root.total_io_s() - 1.0).abs() < 1e-12);
        assert!((root.total_cpu_s() - 0.75).abs() < 1e-12);
        assert!(root.contains_op(&|op| matches!(op, PhysicalOp::FileScan { .. })));
        assert!(!root.contains_op(&|op| matches!(op, PhysicalOp::Assembly { .. })));
    }
}
