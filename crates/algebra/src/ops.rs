//! The logical and physical operator vocabularies.
//!
//! Logical operators carry *simple arguments only* — interned predicate
//! ids, variable ids, collection ids. Note the trick that keeps `Mat` and
//! `Unnest` hashable one-liners: the output variable's
//! [`crate::VarOrigin`] already records the source variable and field, so
//! the operator needs nothing but `out`.

use crate::pred::{Operand, PredId};
use crate::scope::VarId;
use oodb_object::{CollectionId, IndexId};

/// Set-operator kind (value/OID-matching operations "developed in the
/// relational context \[that\] remain relevant in object-oriented database
/// systems").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SetOpKind {
    /// Set union.
    Union,
    /// Set intersection.
    Intersect,
    /// Set difference.
    Difference,
}

impl SetOpKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SetOpKind::Union => "Union",
            SetOpKind::Intersect => "Intersect",
            SetOpKind::Difference => "Difference",
        }
    }
}

/// A logical operator — the optimizer's input vocabulary.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LogicalOp {
    /// Scan a named collection, bringing `var` into scope.
    Get {
        /// Collection scanned.
        coll: CollectionId,
        /// Variable introduced.
        var: VarId,
    },
    /// Filter by an interned predicate.
    Select {
        /// The predicate.
        pred: PredId,
    },
    /// Produce output items (object construction with new identity — the
    /// `Newobject(...)` of ZQL).
    Project {
        /// Output expressions.
        items: Vec<Operand>,
    },
    /// Join two inputs on a predicate (value- or identity-based).
    Join {
        /// The join predicate.
        pred: PredId,
    },
    /// The novel *materialize* operator: bring the component referenced by
    /// `out`'s origin into scope. "It lets elements of a path expression
    /// come into scope so that these elements may be used in later
    /// operations."
    Mat {
        /// The variable materialized (origin `Mat { src, field }`).
        out: VarId,
    },
    /// Reveal the references in a set-valued component as one tuple per
    /// element.
    Unnest {
        /// The variable introduced (origin `Unnest { src, field }`).
        out: VarId,
    },
    /// Union/intersection/difference of two inputs over the same scope.
    SetOp {
        /// Which set operation.
        kind: SetOpKind,
    },
}

impl LogicalOp {
    /// Number of inputs this operator takes.
    pub fn arity(&self) -> usize {
        match self {
            LogicalOp::Get { .. } => 0,
            LogicalOp::Select { .. }
            | LogicalOp::Project { .. }
            | LogicalOp::Mat { .. }
            | LogicalOp::Unnest { .. } => 1,
            LogicalOp::Join { .. } | LogicalOp::SetOp { .. } => 2,
        }
    }
}

/// A physical operator — an execution algorithm (or property enforcer).
#[derive(Clone, PartialEq, Debug)]
pub enum PhysicalOp {
    /// Sequential scan of a collection's dense pages.
    FileScan {
        /// Collection scanned.
        coll: CollectionId,
        /// Variable delivered (in memory).
        var: VarId,
    },
    /// Index scan, possibly over a *path* index: evaluates `pred` through
    /// the index and fetches only matching base objects. Intermediate path
    /// components are never read — the collapsed form of
    /// select–materialize–get.
    IndexScan {
        /// The index used.
        index: IndexId,
        /// Base variable delivered.
        var: VarId,
        /// Predicate answered by the index.
        pred: PredId,
    },
    /// Predicate evaluation over in-memory objects.
    Filter {
        /// The predicate.
        pred: PredId,
    },
    /// Hybrid hash join (build on the smaller input; also used for
    /// identity joins between a reference and OIDs).
    HybridHashJoin {
        /// The join predicate.
        pred: PredId,
    },
    /// Pointer-based join (Shekita–Carey): resolves a reference equi-join
    /// by partitioned fetching of the referenced objects instead of
    /// scanning the target collection.
    PointerJoin {
        /// The join predicate (must be a reference equality).
        pred: PredId,
    },
    /// Complex-object assembly (Keller–Graefe–Maier): materializes the
    /// target variables by resolving references with a *window* of open
    /// references, sequencing disk reads in an elevator pattern. Serves
    /// both as the implementation of `Mat` and as the enforcer of the
    /// present-in-memory property.
    Assembly {
        /// Variables materialized, in dependency order.
        targets: Vec<VarId>,
        /// Window of open references (1 disables the elevator advantage).
        window: u32,
    },
    /// Warm-start assembly (the paper's Lesson 7 suggestion): scan the
    /// referenced component's whole collection sequentially into memory
    /// *before* resolving references, trading per-reference faults for one
    /// sequential sweep. Wins when references far outnumber the domain's
    /// pages. Off by default in the optimizer (it is the paper's future
    /// work, not its 1993 rule set).
    WarmAssembly {
        /// The variable materialized.
        target: VarId,
    },
    /// Physical projection; requires its referenced variables in memory.
    AlgProject {
        /// Output expressions.
        items: Vec<Operand>,
    },
    /// Physical unnest.
    AlgUnnest {
        /// Variable introduced (references).
        out: VarId,
    },
    /// Hash-based set operation on object identity.
    HashSetOp {
        /// Which set operation.
        kind: SetOpKind,
    },
    /// In-memory sort — the enforcer for the sort-order physical property
    /// (our extension beyond the 1993 prototype).
    Sort {
        /// The ordering produced.
        key: crate::props::SortSpec,
    },
    /// Merge join over inputs sorted on the join attributes — the
    /// algorithm whose absence in the 1993 prototype was the reason it
    /// "supports only presence in memory". Requires a value (attribute)
    /// equality predicate.
    MergeJoin {
        /// The join predicate (first term must be `Attr == Attr`).
        pred: PredId,
    },
}

impl PhysicalOp {
    /// Number of inputs.
    pub fn arity(&self) -> usize {
        match self {
            PhysicalOp::FileScan { .. } | PhysicalOp::IndexScan { .. } => 0,
            PhysicalOp::Filter { .. }
            | PhysicalOp::Assembly { .. }
            | PhysicalOp::WarmAssembly { .. }
            | PhysicalOp::AlgProject { .. }
            | PhysicalOp::AlgUnnest { .. }
            | PhysicalOp::Sort { .. } => 1,
            PhysicalOp::HybridHashJoin { .. }
            | PhysicalOp::PointerJoin { .. }
            | PhysicalOp::MergeJoin { .. }
            | PhysicalOp::HashSetOp { .. } => 2,
        }
    }

    /// Short algorithm name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::FileScan { .. } => "File Scan",
            PhysicalOp::IndexScan { .. } => "Index Scan",
            PhysicalOp::Filter { .. } => "Filter",
            PhysicalOp::HybridHashJoin { .. } => "Hybrid Hash Join",
            PhysicalOp::PointerJoin { .. } => "Pointer Join",
            PhysicalOp::Assembly { .. } => "Assembly",
            PhysicalOp::WarmAssembly { .. } => "Warm Assembly",
            PhysicalOp::Sort { .. } => "Sort",
            PhysicalOp::MergeJoin { .. } => "Merge Join",
            PhysicalOp::AlgProject { .. } => "Alg-Project",
            PhysicalOp::AlgUnnest { .. } => "Alg-Unnest",
            PhysicalOp::HashSetOp { kind } => match kind {
                SetOpKind::Union => "Hash Union",
                SetOpKind::Intersect => "Hash Intersect",
                SetOpKind::Difference => "Hash Difference",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities() {
        let v = VarId::from_index(0);
        assert_eq!(
            LogicalOp::Get {
                coll: CollectionId::from_index(0),
                var: v
            }
            .arity(),
            0
        );
        assert_eq!(LogicalOp::Mat { out: v }.arity(), 1);
        assert_eq!(
            LogicalOp::SetOp {
                kind: SetOpKind::Union
            }
            .arity(),
            2
        );
        assert_eq!(
            PhysicalOp::Assembly {
                targets: vec![v],
                window: 8192
            }
            .arity(),
            1
        );
    }

    #[test]
    fn logical_ops_hash_and_compare_by_ids() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        let a = LogicalOp::Mat {
            out: VarId::from_index(1),
        };
        let b = LogicalOp::Mat {
            out: VarId::from_index(1),
        };
        set.insert(a);
        assert!(set.contains(&b), "structurally equal ops must collide");
    }
}
