//! # `oodb-telemetry` — unified observability for the Open OODB stack
//!
//! The paper's whole evaluation (Tables 2–3, the search-effort and
//! plan-quality figures) is instrumentation; this crate makes that
//! instrumentation a first-class, always-on subsystem instead of
//! per-experiment scaffolding. Three primitives, no dependencies:
//!
//! * [`MetricsRegistry`] — a lock-light registry of named, labelled
//!   metrics. Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`'d
//!   atomics: registration takes a lock once, the hot path is a relaxed
//!   atomic op. Histograms use *fixed* power-of-two nanosecond buckets
//!   (256 ns … ~17 s), so recording is branch-light, merging is trivial,
//!   and two runs of the same binary always bucket identically —
//!   comparable across reports without bucket negotiation.
//! * **Profiling gate** — histograms observe only while
//!   [`MetricsRegistry::set_profiling`] is on (a single relaxed load when
//!   off). Counters and gauges are always live: they are the cheap part
//!   and the `\metrics` dump must never read zero hits just because
//!   profiling was off.
//! * [`OpTrace`] — a per-operator execution trace (actual rows, wall
//!   clock, buffer hits/misses, simulated I/O) mirroring a physical plan
//!   tree; the substance behind `EXPLAIN ANALYZE`.
//!
//! Exports: [`MetricsRegistry::render_prometheus`] (Prometheus text
//! format, for `\metrics` and scrapers) and
//! [`MetricsRegistry::render_json`] (a snapshot the bench harness embeds
//! in `BENCH_*.json`).

#![forbid(unsafe_code)]

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, StageTimer, BUCKET_BOUNDS_NS,
};
pub use trace::{fmt_ns, OpTrace};
