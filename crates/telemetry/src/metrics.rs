//! The metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Hot-path cost model:
//!
//! * counter/gauge update — one relaxed atomic RMW, always on;
//! * histogram observation — one relaxed gate load, and when profiling is
//!   on, a bucket search over a fixed 28-entry table plus three relaxed
//!   RMWs; when off, the gate load alone;
//! * registration — copy-on-write: a *new* key pays one writer-mutex
//!   acquisition and a map clone; re-registering an existing key (the
//!   respawned-worker path) is a lock-free snapshot probe. Neither is on
//!   the per-query path (callers cache handles).
//!
//! Buckets are fixed powers of two in nanoseconds so every process buckets
//! identically: reports from different runs (or different worker counts)
//! merge by summing counts, and quantiles are reproducible.

use oodb_sync::Snap;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of finite histogram buckets.
pub const BUCKET_COUNT: usize = 27;

/// Upper bounds (inclusive) of the finite buckets, in nanoseconds:
/// 256 ns, 512 ns, … doubling up to ~17 s. Observations above the last
/// bound land in an overflow (`+Inf`) bucket.
pub const BUCKET_BOUNDS_NS: [u64; BUCKET_COUNT] = {
    let mut bounds = [0u64; BUCKET_COUNT];
    let mut i = 0;
    while i < BUCKET_COUNT {
        bounds[i] = 256u64 << i;
        i += 1;
    }
    bounds
};

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter (not in any registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the absolute value. For mirroring a monotone counter that is
    /// maintained elsewhere (e.g. the plan cache's own hit/miss cells)
    /// into the registry at export time.
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (queue depths, residency).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A detached gauge (not in any registry).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Subtracts `d`.
    pub fn sub(&self, d: i64) {
        self.0.fetch_sub(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Finite buckets plus one overflow bucket.
    counts: [AtomicU64; BUCKET_COUNT + 1],
    sum_ns: AtomicU64,
    count: AtomicU64,
    /// Shared with the owning registry; observations no-op when false.
    gate: Arc<AtomicBool>,
}

/// A fixed-bucket latency histogram. Cloning shares the underlying cells.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Index of the bucket an observation falls in (overflow = `BUCKET_COUNT`).
fn bucket_index(ns: u64) -> usize {
    // Inclusive upper bounds: bounds[i] = 256 << i, so the bucket is the
    // number of doublings needed past 256.
    if ns <= BUCKET_BOUNDS_NS[0] {
        return 0;
    }
    // Boundary determinism: an exact power of two is its own inclusive
    // bound — 256 << k lands in bucket k, never the next one up. Handled
    // as its own case so the property holds by construction rather than
    // through `ns - 1` borrow arithmetic.
    let log2 = if ns.is_power_of_two() {
        ns.trailing_zeros() as usize
    } else {
        // Non-powers round up: bucket = ceil(log2(ns)) - 8.
        64 - ns.leading_zeros() as usize
    };
    log2.saturating_sub(8).min(BUCKET_COUNT)
}

impl Histogram {
    /// A detached histogram whose gate is always open (tests, ad-hoc use).
    pub fn new() -> Self {
        Histogram::with_gate(Arc::new(AtomicBool::new(true)))
    }

    fn with_gate(gate: Arc<AtomicBool>) -> Self {
        Histogram(Arc::new(HistogramCore {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
            gate,
        }))
    }

    /// Records one observation in nanoseconds. A no-op while the owning
    /// registry's profiling gate is off.
    pub fn record(&self, ns: u64) {
        if !self.0.gate.load(Ordering::Relaxed) {
            return;
        }
        self.0.counts[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.0.sum_ns.load(Ordering::Relaxed)
    }

    /// An interpolated quantile in nanoseconds (`q` in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// A consistent point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .0
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum_ns: self.sum_ns(),
            count: self.count(),
        }
    }
}

/// A point-in-time copy of one histogram's cells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (finite buckets then overflow).
    pub counts: Vec<u64>,
    /// Sum of observations in nanoseconds.
    pub sum_ns: u64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Observations accumulated since `base` was captured: subtracts the
    /// older snapshot cell-wise, windowing a cumulative histogram to one
    /// measured interval (the fixed buckets make this exact).
    pub fn delta(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .zip(base.counts.iter())
                .map(|(a, b)| a - b)
                .collect(),
            sum_ns: self.sum_ns - base.sum_ns,
            count: self.count - base.count,
        }
    }

    /// An interpolated quantile in nanoseconds (`q` in `[0, 1]`): linear
    /// within the containing bucket, saturating at the last finite bound
    /// for observations in the overflow bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo = if i == 0 { 0 } else { BUCKET_BOUNDS_NS[i - 1] };
            if i >= BUCKET_COUNT {
                // Overflow: no upper bound to interpolate against.
                return lo as f64;
            }
            let hi = BUCKET_BOUNDS_NS[i];
            if seen + c >= target {
                let frac = (target - seen) as f64 / c as f64;
                return lo as f64 + frac * (hi - lo) as f64;
            }
            seen += c;
        }
        *BUCKET_BOUNDS_NS.last().unwrap() as f64
    }
}

/// A stage stopwatch: `lap()` yields nanoseconds since the previous lap,
/// so one timer splits a pipeline into consecutive stage latencies.
#[derive(Debug)]
pub struct StageTimer {
    last: Instant,
}

impl Default for StageTimer {
    fn default() -> Self {
        StageTimer::start()
    }
}

impl StageTimer {
    /// Starts timing.
    pub fn start() -> Self {
        StageTimer {
            last: Instant::now(),
        }
    }

    /// Nanoseconds since the previous lap (or start), then resets.
    pub fn lap(&mut self) -> u64 {
        let now = Instant::now();
        let ns = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        ns
    }

    /// Laps and records the split into `hist`. Returns the split.
    pub fn lap_into(&mut self, hist: &Histogram) -> u64 {
        let ns = self.lap();
        hist.record(ns);
        ns
    }
}

/// A metric's identity: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Metric name (Prometheus conventions: `snake_case`, unit suffix).
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// `{k="v",…}` or the empty string.
    fn label_suffix(&self, extra: Option<(&str, &str)>) -> String {
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        if let Some((k, v)) = extra {
            pairs.push(format!("{k}=\"{}\"", escape_label(v)));
        }
        if pairs.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", pairs.join(","))
        }
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[derive(Clone, Debug)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// The registry: get-or-create handles by `(name, labels)`, render the
/// whole population as Prometheus text or JSON. Cheap to share behind an
/// `Arc`. The population lives in a copy-on-write snapshot ([`Snap`]):
/// looking up an existing handle and rendering are lock-free snapshot
/// reads; only registering a genuinely *new* key takes the writer mutex
/// and pays an O(population) map clone — rare, bounded, and never on
/// the per-query path.
#[derive(Debug)]
pub struct MetricsRegistry {
    profiling: Arc<AtomicBool>,
    metrics: Snap<BTreeMap<MetricKey, Slot>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry. Profiling (histogram observation) starts **off**
    /// so an instrumented hot path costs one relaxed load until someone
    /// asks for latency data; counters and gauges are always live.
    pub fn new() -> Self {
        MetricsRegistry {
            profiling: Arc::new(AtomicBool::new(false)),
            metrics: Snap::new(BTreeMap::new()),
        }
    }

    /// Get-or-create machinery shared by the three handle kinds: probe
    /// the current snapshot lock-free; only on a miss, publish a new
    /// snapshot with the key inserted (re-checking under the writer
    /// lock so concurrent registrations of one key agree on a handle).
    fn slot(&self, key: MetricKey, make: impl FnOnce() -> Slot) -> Slot {
        if let Some(slot) = self.metrics.load().get(&key) {
            return slot.clone();
        }
        self.metrics.update(|map| {
            if let Some(slot) = map.get(&key) {
                return (map.clone(), slot.clone());
            }
            let slot = make();
            let mut next = map.clone();
            next.insert(key, slot.clone());
            (next, slot)
        })
    }

    /// Turns histogram observation on or off. Counters and gauges are
    /// unaffected — they stay correct either way.
    pub fn set_profiling(&self, on: bool) {
        self.profiling.store(on, Ordering::Relaxed);
    }

    /// Whether histograms are currently observing.
    pub fn profiling(&self) -> bool {
        self.profiling.load(Ordering::Relaxed)
    }

    /// Gets or creates a counter. Panics if the key exists as another kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.slot(MetricKey::new(name, labels), || {
            Slot::Counter(Counter::new())
        }) {
            Slot::Counter(c) => c,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Gets or creates a gauge. Panics if the key exists as another kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.slot(MetricKey::new(name, labels), || Slot::Gauge(Gauge::new())) {
            Slot::Gauge(g) => g,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Gets or creates a histogram (gated by this registry's profiling
    /// flag). Panics if the key exists as another kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let gate = Arc::clone(&self.profiling);
        match self.slot(MetricKey::new(name, labels), || {
            Slot::Histogram(Histogram::with_gate(gate))
        }) {
            Slot::Histogram(h) => h,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Renders every metric in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.load();
        let mut out = String::new();
        let mut last_typed: Option<(String, &'static str)> = None;
        for (key, slot) in metrics.iter() {
            let needs_type = last_typed
                .as_ref()
                .map(|(n, _)| n != &key.name)
                .unwrap_or(true);
            if needs_type {
                let _ = writeln!(out, "# TYPE {} {}", key.name, slot.kind());
                last_typed = Some((key.name.clone(), slot.kind()));
            }
            match slot {
                Slot::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", key.name, key.label_suffix(None), c.get());
                }
                Slot::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", key.name, key.label_suffix(None), g.get());
                }
                Slot::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cum = 0u64;
                    for (i, c) in snap.counts.iter().enumerate() {
                        cum += c;
                        let le = if i < BUCKET_COUNT {
                            BUCKET_BOUNDS_NS[i].to_string()
                        } else {
                            "+Inf".to_string()
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            key.name,
                            key.label_suffix(Some(("le", &le))),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        key.name,
                        key.label_suffix(None),
                        snap.sum_ns
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        key.name,
                        key.label_suffix(None),
                        snap.count
                    );
                }
            }
        }
        out
    }

    /// Renders a JSON snapshot: counters and gauges with their values,
    /// histograms with count/sum/mean and interpolated p50/p95/p99.
    pub fn render_json(&self) -> String {
        let metrics = self.metrics.load();
        let labels_json = |key: &MetricKey| {
            let pairs: Vec<String> = key
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\": \"{}\"", escape_json(k), escape_json(v)))
                .collect();
            format!("{{{}}}", pairs.join(", "))
        };
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (key, slot) in metrics.iter() {
            let name = escape_json(&key.name);
            match slot {
                Slot::Counter(c) => counters.push(format!(
                    "{{\"name\": \"{name}\", \"labels\": {}, \"value\": {}}}",
                    labels_json(key),
                    c.get()
                )),
                Slot::Gauge(g) => gauges.push(format!(
                    "{{\"name\": \"{name}\", \"labels\": {}, \"value\": {}}}",
                    labels_json(key),
                    g.get()
                )),
                Slot::Histogram(h) => {
                    let snap = h.snapshot();
                    histograms.push(format!(
                        "{{\"name\": \"{name}\", \"labels\": {}, \"count\": {}, \
                         \"sum_ns\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {:.1}, \
                         \"p95_ns\": {:.1}, \"p99_ns\": {:.1}}}",
                        labels_json(key),
                        snap.count,
                        snap.sum_ns,
                        snap.mean_ns(),
                        snap.quantile(0.50),
                        snap.quantile(0.95),
                        snap.quantile(0.99)
                    ));
                }
            }
        }
        format!(
            "{{\"counters\": [{}], \"gauges\": [{}], \"histograms\": [{}]}}",
            counters.join(", "),
            gauges.join(", "),
            histograms.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        // Every bound must land in its own bucket; bound+1 in the next.
        for (i, &b) in BUCKET_BOUNDS_NS.iter().enumerate() {
            assert_eq!(bucket_index(b), i, "bound {b}");
            assert_eq!(bucket_index(b + 1), (i + 1).min(BUCKET_COUNT));
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT);
    }

    /// Regression: exact powers of two must land deterministically in the
    /// bucket whose inclusive bound they equal — checked against a plain
    /// linear scan over the declared bounds for every power of two a u64
    /// can hold, plus both neighbors (the values most exposed to
    /// off-by-one arithmetic).
    #[test]
    fn power_of_two_samples_land_on_their_own_bound() {
        let linear = |ns: u64| -> usize {
            BUCKET_BOUNDS_NS
                .iter()
                .position(|&b| ns <= b)
                .unwrap_or(BUCKET_COUNT)
        };
        for k in 0..64 {
            let p = 1u64 << k;
            for ns in [p.saturating_sub(1), p, p.saturating_add(1)] {
                assert_eq!(bucket_index(ns), linear(ns), "ns={ns} (2^{k} neighborhood)");
            }
        }
        // The boundary itself and its successor always differ (until the
        // overflow bucket absorbs both).
        for &b in &BUCKET_BOUNDS_NS[..BUCKET_COUNT - 1] {
            assert_ne!(bucket_index(b), bucket_index(b + 1), "bound {b}");
        }
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::new();
        for ns in [100u64, 300, 1000, 5000, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 106_400);
        let p50 = h.quantile(0.5);
        // Third of five observations: the 1000 ns one, bucket (512, 1024].
        assert!(p50 > 512.0 && p50 <= 1024.0, "p50 = {p50}");
        assert!(h.quantile(1.0) >= 65_536.0);
        assert_eq!(h.quantile(0.0), h.quantile(1.0 / 5.0));
    }

    #[test]
    fn profiling_gate_stops_histograms_not_counters() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("x_ns", &[]);
        let c = reg.counter("y_total", &[]);
        reg.set_profiling(false);
        h.record(100);
        c.inc();
        assert_eq!(h.count(), 0, "gated histogram must not observe");
        assert_eq!(c.get(), 1, "counters are always live");
        reg.set_profiling(true);
        h.record(100);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registry_reuses_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits_total", &[("shard", "0")]);
        let b = reg.counter("hits_total", &[("shard", "0")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same key must share the cell");
        let other = reg.counter("hits_total", &[("shard", "1")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", &[]);
        reg.gauge("x", &[]);
    }

    #[test]
    fn prometheus_format_shape() {
        let reg = MetricsRegistry::new();
        reg.set_profiling(true);
        reg.counter("requests_total", &[("kind", "read")]).add(3);
        reg.gauge("queue_depth", &[]).set(2);
        let h = reg.histogram("latency_ns", &[("stage", "parse")]);
        h.record(300);
        h.record(70_000);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(text.contains("requests_total{kind=\"read\"} 3"), "{text}");
        assert!(text.contains("# TYPE queue_depth gauge"), "{text}");
        assert!(text.contains("queue_depth 2"), "{text}");
        assert!(text.contains("# TYPE latency_ns histogram"), "{text}");
        assert!(
            text.contains("latency_ns_bucket{stage=\"parse\",le=\"512\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("latency_ns_bucket{stage=\"parse\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("latency_ns_sum{stage=\"parse\"} 70300"),
            "{text}"
        );
        assert!(
            text.contains("latency_ns_count{stage=\"parse\"} 2"),
            "{text}"
        );
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("latency_ns_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
    }

    #[test]
    fn json_snapshot_shape() {
        let reg = MetricsRegistry::new();
        reg.set_profiling(true);
        reg.counter("c_total", &[]).add(7);
        reg.histogram("h_ns", &[("stage", "x")]).record(1000);
        let json = reg.render_json();
        assert!(json.contains("\"name\": \"c_total\""), "{json}");
        assert!(json.contains("\"value\": 7"), "{json}");
        assert!(json.contains("\"stage\": \"x\""), "{json}");
        assert!(json.contains("\"count\": 1"), "{json}");
        assert!(json.contains("\"p99_ns\""), "{json}");
    }

    #[test]
    fn snapshot_delta_windows_an_interval() {
        let h = Histogram::new();
        h.record(300);
        h.record(5_000);
        let base = h.snapshot();
        h.record(5_000);
        h.record(70_000);
        let d = h.snapshot().delta(&base);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum_ns, 75_000);
        assert_eq!(d.counts.iter().sum::<u64>(), 2);
        // The interval excludes the pre-base 300ns observation entirely.
        assert_eq!(d.counts[bucket_index(300)], 0);
    }

    #[test]
    fn stage_timer_splits() {
        let mut t = StageTimer::start();
        let h = Histogram::new();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let a = t.lap_into(&h);
        assert!(a >= 1_000_000, "{a}");
        assert_eq!(h.count(), 1);
        let b = t.lap();
        assert!(b < a, "second lap must restart from the first lap's end");
    }
}
