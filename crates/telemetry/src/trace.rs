//! Operator-level execution traces — the substance behind `EXPLAIN
//! ANALYZE`.
//!
//! An [`OpTrace`] tree mirrors a physical plan tree one-to-one: the
//! executor wraps every operator with a stopwatch and an I/O probe and
//! hands back actual row counts, wall-clock time, and buffer/disk traffic
//! per operator. Times and I/O are *cumulative* (they include the
//! operator's inputs, the way `EXPLAIN ANALYZE` conventionally reports);
//! [`OpTrace::self_elapsed_ns`] and friends subtract the children for
//! per-operator attribution.

/// One operator's measured execution, with its inputs as children.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpTrace {
    /// Operator description (e.g. `Index Scan Cities: c, c.mayor.name == "Joe"`).
    pub label: String,
    /// Rows (tuples) the operator produced.
    pub actual_rows: u64,
    /// Wall-clock nanoseconds, including children.
    pub elapsed_ns: u64,
    /// Buffer-pool hits charged while this subtree ran.
    pub buffer_hits: u64,
    /// Buffer-pool misses charged while this subtree ran.
    pub buffer_misses: u64,
    /// Simulated disk seconds charged while this subtree ran.
    pub sim_io_s: f64,
    /// Spill pages moved (written + re-read) while this subtree ran —
    /// nonzero only when a memory grant forced an operator to overflow.
    pub spill_pages: u64,
    /// Input operators, in plan order.
    pub children: Vec<OpTrace>,
}

impl OpTrace {
    /// Wall-clock nanoseconds spent in this operator alone.
    pub fn self_elapsed_ns(&self) -> u64 {
        self.elapsed_ns
            .saturating_sub(self.children.iter().map(|c| c.elapsed_ns).sum())
    }

    /// Buffer hits charged to this operator alone.
    pub fn self_buffer_hits(&self) -> u64 {
        self.buffer_hits
            .saturating_sub(self.children.iter().map(|c| c.buffer_hits).sum())
    }

    /// Buffer misses charged to this operator alone.
    pub fn self_buffer_misses(&self) -> u64 {
        self.buffer_misses
            .saturating_sub(self.children.iter().map(|c| c.buffer_misses).sum())
    }

    /// Every node of the tree, depth-first, root first.
    pub fn flatten(&self) -> Vec<&OpTrace> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.flatten());
        }
        out
    }

    /// Renders the annotated tree in the repo's figure style: unary chains
    /// stack vertically with `|`, binary inputs indent with `|--`/`` `-- ``
    /// hooks, and every line carries the measured numbers.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn annotation(&self) -> String {
        let mut s = format!(
            "(actual rows={} time={} self={} buf hit/miss={}/{} io={:.4}s",
            self.actual_rows,
            fmt_ns(self.elapsed_ns),
            fmt_ns(self.self_elapsed_ns()),
            self.buffer_hits,
            self.buffer_misses,
            self.sim_io_s,
        );
        if self.spill_pages > 0 {
            s.push_str(&format!(" spill={} pages", self.spill_pages));
        }
        s.push(')');
        s
    }

    fn render_into(&self, out: &mut String) {
        out.push_str(&self.label);
        out.push_str("  ");
        out.push_str(&self.annotation());
        out.push('\n');
        match self.children.len() {
            0 => {}
            1 => {
                out.push_str("|\n");
                self.children[0].render_into(out);
            }
            _ => {
                for (i, child) in self.children.iter().enumerate() {
                    let last = i == self.children.len() - 1;
                    let (hook, pad) = if last {
                        ("`-- ", "    ")
                    } else {
                        ("|-- ", "|   ")
                    };
                    let mut sub = String::new();
                    child.render_into(&mut sub);
                    for (j, line) in sub.lines().enumerate() {
                        out.push_str(if j == 0 { hook } else { pad });
                        out.push_str(line);
                        out.push('\n');
                    }
                }
            }
        }
    }
}

/// Human-readable nanoseconds: `412ns`, `3.2µs`, `14.7ms`, `1.203s`.
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.3}s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(label: &str, rows: u64, ns: u64) -> OpTrace {
        OpTrace {
            label: label.into(),
            actual_rows: rows,
            elapsed_ns: ns,
            ..Default::default()
        }
    }

    #[test]
    fn self_time_subtracts_children() {
        let t = OpTrace {
            label: "Filter".into(),
            actual_rows: 10,
            elapsed_ns: 1000,
            children: vec![leaf("Scan", 100, 700)],
            ..Default::default()
        };
        assert_eq!(t.self_elapsed_ns(), 300);
        assert_eq!(t.flatten().len(), 2);
    }

    #[test]
    fn unary_chain_renders_vertically() {
        let t = OpTrace {
            label: "Filter x == 1".into(),
            actual_rows: 1,
            elapsed_ns: 10,
            children: vec![leaf("File Scan Ts: t", 9, 5)],
            ..Default::default()
        };
        let text = t.render();
        assert!(text.starts_with("Filter x == 1  (actual rows=1"), "{text}");
        assert!(
            text.contains("\n|\nFile Scan Ts: t  (actual rows=9"),
            "{text}"
        );
    }

    #[test]
    fn binary_renders_with_hooks() {
        let t = OpTrace {
            label: "Hash Join".into(),
            actual_rows: 4,
            elapsed_ns: 30,
            children: vec![leaf("L", 2, 10), leaf("R", 3, 10)],
            ..Default::default()
        };
        let text = t.render();
        assert!(text.contains("|-- L "), "{text}");
        assert!(text.contains("`-- R "), "{text}");
    }

    #[test]
    fn spill_pages_render_only_when_present() {
        let quiet = leaf("Scan", 1, 10);
        assert!(!quiet.render().contains("spill="), "{}", quiet.render());
        let spilled = OpTrace {
            label: "Hybrid Hash Join".into(),
            spill_pages: 12,
            ..Default::default()
        };
        assert!(
            spilled.render().contains("spill=12 pages"),
            "{}",
            spilled.render()
        );
    }

    #[test]
    fn fmt_ns_ranges() {
        assert_eq!(fmt_ns(412), "412ns");
        assert_eq!(fmt_ns(3_200), "3.2µs");
        assert_eq!(fmt_ns(14_700_000), "14.7ms");
        assert_eq!(fmt_ns(1_203_000_000), "1.203s");
    }
}
