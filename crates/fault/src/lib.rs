//! # `oodb-fault` — deterministic fault injection and run limits
//!
//! The resilience substrate for the query service. Four small,
//! dependency-free pieces:
//!
//! * [`FaultInjector`] — a seedable fault model for the storage read path.
//!   Whether a page is faulty is a **pure function of `(seed, page)`**
//!   (a splitmix64 hash against [`FaultConfig::read_fault_rate`]), not a
//!   fresh random draw per access, so every replay of the same workload
//!   sees the same faults. Faulty pages are either *transient* — they fault
//!   [`FaultConfig::faults_per_page`] times and then heal, which makes
//!   retried executions converge monotonically — or *permanent*, faulting
//!   on every access forever. The injector can also add per-access latency
//!   and inject outright panics ([`FaultConfig::panic_rate`]) to exercise
//!   `catch_unwind` isolation above it.
//! * [`WriteFaultInjector`] — the write-path mirror, consumed by the
//!   write-ahead log: torn writes (only a prefix of a record reaches the
//!   file before the simulated crash), partial flushes (a batched flush
//!   persists only some of its buffered records), and sync failures
//!   (`fsync` reports an error after the data may or may not be stable).
//!   Classification is a pure function of `(seed, operation index)`, so
//!   a crash schedule replays bit-for-bit.
//! * [`CancelToken`] — a cooperative cancellation flag shared between a
//!   submitter and the executor, checked at operator batch boundaries.
//! * [`RunLimits`] — the per-run admission envelope (deadline, cancel
//!   token, row budget) threaded into the executor.
//!
//! The disabled hot path is one relaxed atomic load per page access; the
//! overhead of compiling the injector in but leaving it disabled is
//! measured in EXPERIMENTS.md (< 1% gate).

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How a storage fault behaves across retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Heals after [`FaultConfig::faults_per_page`] occurrences; a retry
    /// that re-reads the page eventually succeeds.
    Transient,
    /// Faults on every access forever; retrying is pointless.
    Permanent,
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultClass::Transient => write!(f, "transient"),
            FaultClass::Permanent => write!(f, "permanent"),
        }
    }
}

/// One injected storage fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// The page whose read faulted.
    pub page: u64,
    /// Transient (retryable) or permanent.
    pub class: FaultClass,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} storage fault on page {}", self.class, self.page)
    }
}

impl std::error::Error for Fault {}

/// Fault-model parameters. Immutable once the injector is built —
/// reconfigure by attaching a fresh injector.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Fraction of pages that are faulty, in `[0, 1]`. Faultiness is
    /// decided per page by hashing, so the *same* pages fault on every
    /// access of every replay with the same seed.
    pub read_fault_rate: f64,
    /// Among faulty pages, the fraction whose faults are permanent.
    pub permanent_ratio: f64,
    /// How many times a transient page faults before healing.
    pub faults_per_page: u32,
    /// Fraction of pages whose first read panics outright (decided by an
    /// independent hash stream), for exercising panic isolation. A page
    /// panics once, then behaves normally.
    pub panic_rate: f64,
    /// Injected latency per page access, in nanoseconds (0 = none).
    pub latency_ns: u64,
    /// Seed for the page-classification hash.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            read_fault_rate: 0.0,
            permanent_ratio: 0.0,
            faults_per_page: 1,
            panic_rate: 0.0,
            latency_ns: 0,
            seed: 0xD15EA5E,
        }
    }
}

/// Counters the injector accumulates, snapshot via
/// [`FaultInjector::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total faults injected (transient + permanent, not panics).
    pub injected: u64,
    /// Transient faults injected.
    pub transient: u64,
    /// Permanent faults injected.
    pub permanent: u64,
    /// Panics injected.
    pub panics: u64,
    /// Accesses to healed transient pages that passed through.
    pub healed_accesses: u64,
    /// Accesses that paid injected latency.
    pub latency_events: u64,
}

struct InjectorInner {
    config: FaultConfig,
    enabled: AtomicBool,
    injected: AtomicU64,
    transient: AtomicU64,
    permanent: AtomicU64,
    panics: AtomicU64,
    healed_accesses: AtomicU64,
    latency_events: AtomicU64,
    /// Per-page transient fault occurrences (healing bookkeeping). The
    /// panic set rides in the same map via [`InjectorInner::panicked`].
    transient_hits: Mutex<HashMap<u64, u32>>,
    /// Pages whose injected panic already fired.
    panicked: Mutex<HashMap<u64, ()>>,
}

/// A deterministic, seedable storage fault injector. Cheap to clone —
/// clones share counters and healing state.
#[derive(Clone)]
pub struct FaultInjector {
    inner: Arc<InjectorInner>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("config", &self.inner.config)
            .field("enabled", &self.enabled())
            .field("stats", &self.stats())
            .finish()
    }
}

impl FaultInjector {
    /// Builds an enabled injector with the given configuration.
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            inner: Arc::new(InjectorInner {
                config,
                enabled: AtomicBool::new(true),
                injected: AtomicU64::new(0),
                transient: AtomicU64::new(0),
                permanent: AtomicU64::new(0),
                panics: AtomicU64::new(0),
                healed_accesses: AtomicU64::new(0),
                latency_events: AtomicU64::new(0),
                transient_hits: Mutex::new(HashMap::new()),
                panicked: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The injector's (immutable) configuration.
    pub fn config(&self) -> FaultConfig {
        self.inner.config
    }

    /// Whether fault injection is active. Disabled, the read-path check is
    /// one relaxed load.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns injection on or off without losing counters or healing state.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Snapshot of the injection counters.
    pub fn stats(&self) -> FaultStats {
        let i = &self.inner;
        FaultStats {
            injected: i.injected.load(Ordering::Relaxed),
            transient: i.transient.load(Ordering::Relaxed),
            permanent: i.permanent.load(Ordering::Relaxed),
            panics: i.panics.load(Ordering::Relaxed),
            healed_accesses: i.healed_accesses.load(Ordering::Relaxed),
            latency_events: i.latency_events.load(Ordering::Relaxed),
        }
    }

    /// Clears counters and healing state (faulty pages fault afresh).
    pub fn reset(&self) {
        let i = &self.inner;
        i.injected.store(0, Ordering::Relaxed);
        i.transient.store(0, Ordering::Relaxed);
        i.permanent.store(0, Ordering::Relaxed);
        i.panics.store(0, Ordering::Relaxed);
        i.healed_accesses.store(0, Ordering::Relaxed);
        i.latency_events.store(0, Ordering::Relaxed);
        lock_recovering(&i.transient_hits).clear();
        lock_recovering(&i.panicked).clear();
    }

    /// How `(seed, page)` classifies: `None` = healthy page.
    fn classify(&self, page: u64) -> Option<FaultClass> {
        let cfg = &self.inner.config;
        let h = splitmix64(cfg.seed ^ splitmix64(page));
        if unit(h) >= cfg.read_fault_rate {
            return None;
        }
        if unit(splitmix64(h)) < cfg.permanent_ratio {
            Some(FaultClass::Permanent)
        } else {
            Some(FaultClass::Transient)
        }
    }

    /// Whether `(seed, page)` is in the panic stream (independent of the
    /// fault stream — a different hash tweak).
    fn classify_panic(&self, page: u64) -> bool {
        let cfg = &self.inner.config;
        if cfg.panic_rate <= 0.0 {
            return false;
        }
        let h = splitmix64(cfg.seed.rotate_left(17) ^ splitmix64(page ^ 0xA5A5_A5A5));
        unit(h) < cfg.panic_rate
    }

    /// The read-path hook: called once per page access *before* the buffer
    /// pool. Sleeps injected latency, panics for panic-stream pages (once
    /// per page), and returns the fault for faulty pages. Transient pages
    /// heal after [`FaultConfig::faults_per_page`] occurrences.
    ///
    /// # Panics
    ///
    /// Deliberately, for pages in the panic stream — the point is to test
    /// the `catch_unwind` isolation of the layers above. No injector lock
    /// is held when the panic is raised.
    pub fn check_read(&self, page: u64) -> Result<(), Fault> {
        if !self.enabled() {
            return Ok(());
        }
        let i = &self.inner;
        if i.config.latency_ns > 0 {
            i.latency_events.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_nanos(i.config.latency_ns));
        }
        if self.classify_panic(page) {
            let fire = lock_recovering(&i.panicked).insert(page, ()).is_none();
            if fire {
                i.panics.fetch_add(1, Ordering::Relaxed);
                panic!("injected panic fault on page {page}");
            }
        }
        match self.classify(page) {
            None => Ok(()),
            Some(FaultClass::Permanent) => {
                i.injected.fetch_add(1, Ordering::Relaxed);
                i.permanent.fetch_add(1, Ordering::Relaxed);
                Err(Fault {
                    page,
                    class: FaultClass::Permanent,
                })
            }
            Some(FaultClass::Transient) => {
                let healed = {
                    let mut hits = lock_recovering(&i.transient_hits);
                    let count = hits.entry(page).or_insert(0);
                    if *count >= i.config.faults_per_page {
                        true
                    } else {
                        *count += 1;
                        false
                    }
                };
                if healed {
                    i.healed_accesses.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                } else {
                    i.injected.fetch_add(1, Ordering::Relaxed);
                    i.transient.fetch_add(1, Ordering::Relaxed);
                    Err(Fault {
                        page,
                        class: FaultClass::Transient,
                    })
                }
            }
        }
    }
}

/// Locks a mutex, recovering from poisoning — the resilience layer must
/// keep working after a panic unwound through a guard holder.
fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// splitmix64: the standard 64-bit finalizer-style mixer. Good enough to
/// decorrelate page ids; trivially reproducible from the seed.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform value in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

// ---- write-path faults ------------------------------------------------------

/// How a write-path fault manifests. All three model a storage stack that
/// lies in a different place: the OS crashing mid-`write`, a drive cache
/// dropping un-synced sectors, and `fsync` itself failing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// The process "crashed" mid-append: only the first `kept` bytes of
    /// the record reached the file. The log's tail is now garbage.
    TornWrite {
        /// Bytes of the record that were persisted before the cut.
        kept: usize,
    },
    /// A batched flush persisted only a prefix of its buffered records;
    /// the rest evaporated with the volatile cache.
    PartialFlush {
        /// Buffered records that actually reached the file.
        kept_records: usize,
    },
    /// The durability barrier itself failed: `fsync` returned an error,
    /// so nothing written since the last successful sync may be trusted.
    SyncFailure,
}

impl std::fmt::Display for WriteFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteFault::TornWrite { kept } => {
                write!(f, "torn write: only {kept} bytes persisted")
            }
            WriteFault::PartialFlush { kept_records } => {
                write!(f, "partial flush: only {kept_records} records persisted")
            }
            WriteFault::SyncFailure => write!(f, "sync failure"),
        }
    }
}

impl std::error::Error for WriteFault {}

/// Write-path fault-model parameters. Immutable once the injector is
/// built, like [`FaultConfig`].
#[derive(Clone, Copy, Debug)]
pub struct WriteFaultConfig {
    /// Fraction of appends that are torn, in `[0, 1]`. Which appends tear
    /// — and how many bytes survive — is a pure function of
    /// `(seed, append index)`.
    pub torn_write_rate: f64,
    /// Fraction of flushes that persist only a prefix of their batch.
    pub partial_flush_rate: f64,
    /// Fraction of syncs that report failure.
    pub sync_failure_rate: f64,
    /// Seed for the operation-classification hash.
    pub seed: u64,
}

impl Default for WriteFaultConfig {
    fn default() -> Self {
        WriteFaultConfig {
            torn_write_rate: 0.0,
            partial_flush_rate: 0.0,
            sync_failure_rate: 0.0,
            seed: 0x0DD_BA11,
        }
    }
}

/// Counters the write injector accumulates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteFaultStats {
    /// Torn writes injected.
    pub torn_writes: u64,
    /// Partial flushes injected.
    pub partial_flushes: u64,
    /// Sync failures injected.
    pub sync_failures: u64,
}

struct WriteInjectorInner {
    config: WriteFaultConfig,
    enabled: AtomicBool,
    torn_writes: AtomicU64,
    partial_flushes: AtomicU64,
    sync_failures: AtomicU64,
}

/// Deterministic write-path fault injector for the WAL. Cheap to clone —
/// clones share counters. The log consults it at each append (`op` = the
/// record's sequence number), flush, and sync.
#[derive(Clone)]
pub struct WriteFaultInjector {
    inner: Arc<WriteInjectorInner>,
}

impl std::fmt::Debug for WriteFaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteFaultInjector")
            .field("config", &self.inner.config)
            .field("enabled", &self.enabled())
            .field("stats", &self.stats())
            .finish()
    }
}

impl WriteFaultInjector {
    /// Builds an enabled injector with the given configuration.
    pub fn new(config: WriteFaultConfig) -> Self {
        WriteFaultInjector {
            inner: Arc::new(WriteInjectorInner {
                config,
                enabled: AtomicBool::new(true),
                torn_writes: AtomicU64::new(0),
                partial_flushes: AtomicU64::new(0),
                sync_failures: AtomicU64::new(0),
            }),
        }
    }

    /// The injector's (immutable) configuration.
    pub fn config(&self) -> WriteFaultConfig {
        self.inner.config
    }

    /// Whether injection is active.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns injection on or off without losing counters.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Snapshot of the injection counters.
    pub fn stats(&self) -> WriteFaultStats {
        let i = &self.inner;
        WriteFaultStats {
            torn_writes: i.torn_writes.load(Ordering::Relaxed),
            partial_flushes: i.partial_flushes.load(Ordering::Relaxed),
            sync_failures: i.sync_failures.load(Ordering::Relaxed),
        }
    }

    /// Append hook: for a torn append, returns the fault carrying how many
    /// of the record's `len` bytes the log must persist before "crashing"
    /// (always a strict prefix, possibly zero). `op` is the record's
    /// sequence number, so the tear schedule is replay-stable.
    pub fn check_append(&self, op: u64, len: usize) -> Result<(), WriteFault> {
        if !self.enabled() {
            return Ok(());
        }
        let cfg = &self.inner.config;
        let h = splitmix64(cfg.seed ^ splitmix64(op ^ 0x7047_0047));
        if unit(h) >= cfg.torn_write_rate {
            return Ok(());
        }
        self.inner.torn_writes.fetch_add(1, Ordering::Relaxed);
        let kept = if len == 0 {
            0
        } else {
            (splitmix64(h) as usize) % len
        };
        Err(WriteFault::TornWrite { kept })
    }

    /// Flush hook: for a partial flush of `buffered` records, returns the
    /// fault carrying how many buffered records survive (a strict prefix).
    pub fn check_flush(&self, op: u64, buffered: usize) -> Result<(), WriteFault> {
        if !self.enabled() {
            return Ok(());
        }
        let cfg = &self.inner.config;
        let h = splitmix64(cfg.seed.rotate_left(21) ^ splitmix64(op ^ 0xF1A5_0F1A));
        if unit(h) >= cfg.partial_flush_rate || buffered == 0 {
            return Ok(());
        }
        self.inner.partial_flushes.fetch_add(1, Ordering::Relaxed);
        Err(WriteFault::PartialFlush {
            kept_records: (splitmix64(h) as usize) % buffered,
        })
    }

    /// Sync hook: decides whether this durability barrier fails.
    pub fn check_sync(&self, op: u64) -> Result<(), WriteFault> {
        if !self.enabled() {
            return Ok(());
        }
        let cfg = &self.inner.config;
        let h = splitmix64(cfg.seed.rotate_left(42) ^ splitmix64(op ^ 0x5A5A_11FE));
        if unit(h) >= cfg.sync_failure_rate {
            return Ok(());
        }
        self.inner.sync_failures.fetch_add(1, Ordering::Relaxed);
        Err(WriteFault::SyncFailure)
    }
}

/// A cooperative cancellation flag. Cheap to clone; all clones observe the
/// same flag. The executor polls it at operator batch boundaries.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The admission envelope for one execution run: all limits the executor
/// checks cooperatively at batch boundaries. `Default` is unlimited.
#[derive(Clone, Debug, Default)]
pub struct RunLimits {
    /// Absolute deadline; execution past it fails with a deadline error.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag.
    pub cancel: Option<CancelToken>,
    /// Maximum tuples the run may produce before being cut off.
    pub row_budget: Option<u64>,
    /// Per-query memory grant budget in bytes. Enforced by the
    /// executor's memory grant: operators that would exceed it spill or
    /// stage instead of growing, and fail typed when even the minimum
    /// working unit does not fit.
    pub mem_budget: Option<u64>,
}

impl RunLimits {
    /// True when no limit is set — the common case, kept branch-cheap.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.cancel.is_none()
            && self.row_budget.is_none()
            && self.mem_budget.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(rate: f64, permanent_ratio: f64, seed: u64) -> FaultInjector {
        FaultInjector::new(FaultConfig {
            read_fault_rate: rate,
            permanent_ratio,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn classification_is_deterministic_per_seed() {
        let a = injector(0.3, 0.5, 42);
        let b = injector(0.3, 0.5, 42);
        for page in 0..512 {
            assert_eq!(a.classify(page), b.classify(page), "page {page}");
        }
        // A different seed reshuffles which pages fault.
        let c = injector(0.3, 0.5, 43);
        assert!((0..512).any(|p| a.classify(p) != c.classify(p)));
    }

    #[test]
    fn fault_rate_roughly_matches() {
        let inj = injector(0.10, 0.0, 7);
        let faulty = (0..10_000).filter(|&p| inj.classify(p).is_some()).count();
        assert!((800..1200).contains(&faulty), "got {faulty} of 10000");
    }

    #[test]
    fn transient_pages_heal_after_configured_faults() {
        let inj = injector(1.0, 0.0, 1);
        let err = inj.check_read(5).unwrap_err();
        assert_eq!(err.class, FaultClass::Transient);
        assert!(inj.check_read(5).is_ok(), "second access healed");
        let s = inj.stats();
        assert_eq!((s.injected, s.transient, s.healed_accesses), (1, 1, 1));
    }

    #[test]
    fn permanent_pages_never_heal() {
        let inj = injector(1.0, 1.0, 1);
        for _ in 0..3 {
            assert_eq!(inj.check_read(9).unwrap_err().class, FaultClass::Permanent);
        }
        assert_eq!(inj.stats().permanent, 3);
    }

    #[test]
    fn disabled_injector_is_transparent() {
        let inj = injector(1.0, 1.0, 1);
        inj.set_enabled(false);
        assert!(inj.check_read(1).is_ok());
        assert_eq!(inj.stats().injected, 0);
        inj.set_enabled(true);
        assert!(inj.check_read(1).is_err());
    }

    #[test]
    fn injected_panic_fires_once_per_page() {
        let inj = FaultInjector::new(FaultConfig {
            panic_rate: 1.0,
            ..Default::default()
        });
        let inj2 = inj.clone();
        let caught = std::panic::catch_unwind(move || inj2.check_read(3));
        assert!(caught.is_err(), "first access panics");
        assert!(inj.check_read(3).is_ok(), "page panics only once");
        assert_eq!(inj.stats().panics, 1);
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn run_limits_default_is_unlimited() {
        assert!(RunLimits::default().is_unlimited());
        let limited = RunLimits {
            row_budget: Some(1),
            ..Default::default()
        };
        assert!(!limited.is_unlimited());
        let governed = RunLimits {
            mem_budget: Some(4096),
            ..Default::default()
        };
        assert!(!governed.is_unlimited());
    }

    #[test]
    fn write_faults_are_deterministic_per_seed() {
        let cfg = WriteFaultConfig {
            torn_write_rate: 0.3,
            partial_flush_rate: 0.3,
            sync_failure_rate: 0.3,
            seed: 99,
        };
        let a = WriteFaultInjector::new(cfg);
        let b = WriteFaultInjector::new(cfg);
        for op in 0..256 {
            assert_eq!(a.check_append(op, 100), b.check_append(op, 100));
            assert_eq!(a.check_flush(op, 8), b.check_flush(op, 8));
            assert_eq!(a.check_sync(op), b.check_sync(op));
        }
        // The three streams are independent: some op must tear without
        // failing sync (and vice versa) at these rates.
        let disagree = (0..256).any(|op| {
            let torn = a.check_append(op, 100).is_err();
            let sync = a.check_sync(op).is_err();
            torn != sync
        });
        assert!(disagree, "append and sync streams must be independent");
    }

    #[test]
    fn torn_write_keeps_a_strict_prefix() {
        let inj = WriteFaultInjector::new(WriteFaultConfig {
            torn_write_rate: 1.0,
            ..Default::default()
        });
        for op in 0..64 {
            match inj.check_append(op, 40) {
                Err(WriteFault::TornWrite { kept }) => assert!(kept < 40),
                other => panic!("expected torn write, got {other:?}"),
            }
        }
        assert_eq!(inj.stats().torn_writes, 64);
    }

    #[test]
    fn partial_flush_keeps_a_strict_prefix_of_records() {
        let inj = WriteFaultInjector::new(WriteFaultConfig {
            partial_flush_rate: 1.0,
            ..Default::default()
        });
        match inj.check_flush(0, 5) {
            Err(WriteFault::PartialFlush { kept_records }) => assert!(kept_records < 5),
            other => panic!("expected partial flush, got {other:?}"),
        }
        // An empty batch cannot partially flush.
        assert!(inj.check_flush(1, 0).is_ok());
    }

    #[test]
    fn disabled_write_injector_is_transparent() {
        let inj = WriteFaultInjector::new(WriteFaultConfig {
            torn_write_rate: 1.0,
            partial_flush_rate: 1.0,
            sync_failure_rate: 1.0,
            ..Default::default()
        });
        inj.set_enabled(false);
        assert!(inj.check_append(0, 10).is_ok());
        assert!(inj.check_flush(0, 10).is_ok());
        assert!(inj.check_sync(0).is_ok());
        assert_eq!(inj.stats(), WriteFaultStats::default());
    }

    #[test]
    fn reset_clears_healing_state() {
        let inj = injector(1.0, 0.0, 2);
        assert!(inj.check_read(4).is_err());
        assert!(inj.check_read(4).is_ok());
        inj.reset();
        assert!(inj.check_read(4).is_err(), "faults afresh after reset");
    }
}
