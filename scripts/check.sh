#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, tests. CI and pre-commit both run this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q --workspace

echo "OK"
