#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, tests. CI and pre-commit both run this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q --workspace

# Chaos gate: replay the paper's queries under the deterministic fault
# injector (fixed seed — CI adds a randomized-seed leg on top).
echo "==> chaos replay (fixed seed)"
cargo test -q --test resilience

# Memory-governance smoke: the pressure x faults replay, saturation
# shedding, and the circuit breaker (the `memory` tests in the chaos
# suite; CI's `overload` job runs the full memlimit bench on top).
echo "==> tight-memory smoke (pressure + shedding + breaker)"
cargo test -q --test resilience memory

# Concurrency proof: N submitters race combined statistics + config
# snapshot swaps; no torn (epoch, config) pair may ever be observed and
# plan-cache accounting must reconcile (CI adds a TSan leg on top).
echo "==> concurrency proof (torn snapshots + cache reconciliation)"
cargo test -q --test scaling

# Serving gate: the wire protocol end to end over loopback — pipelined
# prepared replay reconciling server counters against plan-cache stats,
# malformed/oversized rejection, graceful-shutdown drain, and the
# per-tenant QoS paths (429 queue-full, 503 circuit-open). CI's
# `server` job runs the loopback bench on top.
echo "==> serving gate (wire protocol + tenant QoS + drain)"
cargo test -q --test server

# Plan-space audit: the enumeration oracle over Q1-Q4 in quick mode —
# every plan the memo encodes executes to identical canonical bytes and
# the winner is cost-minimal over the whole space. Rule-graph
# termination and confluence run inside oodb-core's unit tests above;
# this is the executable half (CI's `audit` job runs the same corpus).
echo "==> plan-space audit (enumeration oracle, quick corpus)"
OODB_AUDIT_QUICK=1 cargo test -q --test audit

# Durability gate: the deterministic crash harness — the WAL killed at
# every record boundary plus hundreds of seeded mid-record offsets and
# bit flips, write faults injected on the append/flush/sync paths, and
# the service round-trip recovering Q1-Q4 byte-identically (CI's
# `durability` job adds a randomized-seed leg and the overhead bench).
echo "==> durability gate (crash harness, fixed seed)"
cargo test -q --test durability

# Feedback-loop gate: the suspect -> probe -> re-optimize ladder must
# converge on the skewed fixture, the untraced hot path must feed the
# drift detector, and feedback must retire cleanly across epoch bumps
# and cache clears (CI's `reopt` job replays the bench gates on top).
echo "==> feedback gate (drift ladder + re-optimization)"
cargo test -q --test feedback

# Supply-chain lint: advisories, duplicate versions, license allow-list.
# cargo-deny is an external binary; skip gracefully where it is not
# installed (the offline build container) rather than failing the gate.
if command -v cargo-deny >/dev/null 2>&1; then
    echo "==> cargo deny check"
    cargo deny check
else
    echo "==> cargo deny check (skipped: cargo-deny not installed)"
fi

echo "OK"
