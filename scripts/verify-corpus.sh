#!/usr/bin/env bash
# Replays the paper corpus (Queries 1-4) through `EXPLAIN VERIFY` with
# search-space verification enabled, and fails if the static analyzer
# reports a single diagnostic. CI runs this as the end-to-end gate on the
# oodb-verify subsystem; it is also handy after editing a rule.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${SCALE:-100}"

queries=$(cat <<'EOF'
\verify search on
EXPLAIN VERIFY SELECT Newobject(e.name(), e.job().name(), e.dept().name()) FROM Employee e IN Employees WHERE e.dept().plant().location() == "Dallas";
EXPLAIN VERIFY SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe";
EXPLAIN VERIFY SELECT Newobject(c.mayor().age(), c.name()) FROM City c IN Cities WHERE c.mayor().name() == "Joe";
EXPLAIN VERIFY SELECT t FROM Task t IN Tasks WHERE t.time() == 100 && EXISTS (SELECT m FROM m IN t.team_members() WHERE m.name() == "Fred");
\q
EOF
)

echo "==> replaying Q1-Q4 through EXPLAIN VERIFY (scale 1/${SCALE})"
out=$(printf '%s\n' "$queries" | cargo run --release -q -p oodb-cli -- --scale "$SCALE")
printf '%s\n' "$out"

if printf '%s\n' "$out" | grep -q "verify violation"; then
    echo "FAIL: the static analyzer reported diagnostics on the paper corpus" >&2
    exit 1
fi

ok_count=$(printf '%s\n' "$out" | grep -c "verify: OK" || true)
if [ "$ok_count" -ne 4 ]; then
    echo "FAIL: expected 4 'verify: OK' reports, saw ${ok_count}" >&2
    exit 1
fi

echo "OK: 4/4 corpus queries verified clean (winning plan + memo)"
