//! The paper's motivating workload: a report over employees working in a
//! Dallas plant (Query 1, Figures 5–7) — path expressions turned into
//! joins, links traversed *against* the stored pointer direction, and the
//! price of giving any of that up.
//!
//! ```sh
//! cargo run --example dallas_report
//! ```

use open_oodb::prelude::*;

fn main() {
    let (store, model) = generate_paper_db(GenConfig {
        scale_div: 10,
        ..Default::default()
    });

    // Query 1 through the ZQL front end.
    let src = r#"SELECT Newobject(e.name(), e.job().name(), e.dept().name())
FROM Employee e IN Employees
WHERE e.dept().plant().location() == "Dallas""#;
    println!("ZQL:\n{src}\n");

    let configs = [
        ("All rules", OptimizerConfig::all_rules()),
        (
            "Without join commutativity (naive pointer chasing)",
            OptimizerConfig::without_join_commutativity(),
        ),
        (
            "Naive, assembly window = 1",
            OptimizerConfig::without_window(),
        ),
    ];

    let mut costs = Vec::new();
    for (label, config) in configs {
        // Each optimization run gets a fresh environment (scope/predicate
        // arenas are per-query).
        let q = open_oodb::zql::compile(src, &model.schema, &model.catalog).expect("compiles");
        let optimizer = OpenOodb::with_config(&q.env, config);
        let out = optimizer
            .optimize(&q.plan, q.result_vars)
            .expect("feasible plan");
        println!("=== {label} — estimated {:.2} s ===", out.cost.total());
        println!("{}", render_physical(&q.env, &out.plan));

        let (result, stats) = execute(&store, &q.env, &out.plan);
        println!(
            "executed: {} rows, {} simulated pages, {:.2} s simulated I/O, \
             {} buffer hits\n",
            result.len(),
            stats.disk.pages(),
            stats.disk.total_s,
            stats.buffer_hits,
        );
        costs.push((label, out.cost.total()));
    }

    println!("Cost ladder (paper: 161 → 681 → 1188 s at full scale):");
    for (label, c) in &costs {
        println!("  {c:>8.2} s  {label}");
    }
    println!(
        "\nThe winning plan scans the small Department extent, assembles only\n\
         its Plant components, and hash-joins *backwards* into Employees —\n\
         \"traversing single-directional inter-object links in their opposite\n\
         (not pre-computed) direction\"."
    );
}
