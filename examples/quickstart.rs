//! Quickstart: compile a ZQL query, optimize it, run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use open_oodb::prelude::*;

fn main() {
    // 1. The paper's schema and Table 1 catalog, plus a generated database
    //    (1/10 scale keeps this example snappy).
    let (store, model) = generate_paper_db(GenConfig {
        scale_div: 10,
        ..Default::default()
    });

    // 2. Compile a ZQL[C++]-style query: the paper's Query 2.
    let src = r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#;
    let q = open_oodb::zql::compile(src, &model.schema, &model.catalog).expect("query compiles");
    println!("ZQL:\n  {src}\n");
    println!("Simplified logical algebra (paper Figure 8):");
    println!("{}", render_logical(&q.env, &q.plan));

    // 3. Optimize. The collapse-to-index-scan rule folds the whole
    //    select–materialize–get chain into one path-index scan.
    let optimizer = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules());
    let out = optimizer
        .optimize(&q.plan, q.result_vars)
        .expect("feasible plan");
    println!(
        "Optimal physical plan (estimated {:.3} s):",
        out.cost.total()
    );
    println!("{}", render_physical(&q.env, &out.plan));
    println!(
        "Search: {} groups, {} expressions, optimized in {:?}",
        out.stats.groups, out.stats.exprs, out.stats.elapsed
    );

    // 4. Execute against the simulated store.
    let (result, stats) = execute(&store, &q.env, &out.plan);
    println!(
        "\nExecuted: {} matching cities, {} simulated pages read \
         ({:.3} s of simulated I/O)",
        result.len(),
        stats.disk.pages(),
        stats.disk.total_s
    );
    let c = q
        .env
        .scopes
        .iter()
        .find(|(_, v)| v.name == "c")
        .map(|(id, _)| id)
        .unwrap();
    for t in result.tuples().iter().take(5) {
        let city = t.get(c);
        let name = store.read_field(city, model.ids.city_name);
        let mayor = store
            .read_field(city, model.ids.city_mayor)
            .as_ref_oid()
            .unwrap();
        let mayor_name = store.read_field(mayor, model.ids.person_name);
        println!("  {name} (mayor {mayor_name})");
    }
}
