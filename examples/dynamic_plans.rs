//! Dynamic plan selection — ObjectStore's party trick (paper §2) done
//! cost-based: compile a query ONCE into one plan per useful index
//! configuration, then pick at run time according to whichever indexes
//! actually exist. Users "add and delete indices without having to
//! recompile their applications" — but unlike ObjectStore, every
//! alternative here came out of the exhaustive cost-based optimizer.
//!
//! ```sh
//! cargo run --example dynamic_plans
//! ```

use open_oodb::core::{compile_dynamic, CostParams};
use open_oodb::prelude::*;
use std::collections::HashSet;

fn main() {
    // Optimize against the full-scale Table 1 catalog (where the index
    // alternatives genuinely differ); execute on a 1/10-scale store — the
    // ids line up because both come from the same construction order.
    let (store, _) = generate_paper_db(GenConfig {
        scale_div: 10,
        ..Default::default()
    });
    let model = paper_model();

    // The paper's Query 4.
    let src = r#"SELECT t FROM Task t IN Tasks
WHERE t.time() == 100
  && EXISTS (SELECT m FROM m IN t.team_members() WHERE m.name() == "Fred")"#;
    let q = open_oodb::zql::compile(src, &model.schema, &model.catalog).unwrap();

    println!("Compiling once over every index subset...");
    let dynamic = compile_dynamic(
        &q.env,
        CostParams::default(),
        &OptimizerConfig::all_rules(),
        &q.plan,
        q.result_vars,
    );
    println!(
        "{} distinct alternatives compiled:\n",
        dynamic.alternatives.len()
    );
    for alt in &dynamic.alternatives {
        println!(
            "-- requires {:?} (estimated {:.2} s):",
            alt.requires,
            alt.cost.total()
        );
        println!("{}", render_physical(&q.env, &alt.plan));
    }

    // "Run time": the DBA drops indexes one by one; selection adapts with
    // zero recompilation. Execute each selected plan to prove it runs.
    let scenarios: [(&str, &[&str]); 3] = [
        (
            "all indexes present",
            &["Tasks_time", "Employees_name", "Cities_mayor_name"],
        ),
        (
            "time index dropped",
            &["Employees_name", "Cities_mayor_name"],
        ),
        ("no indexes at all", &[]),
    ];
    for (label, names) in scenarios {
        let available: HashSet<String> = names.iter().map(|s| s.to_string()).collect();
        let chosen = dynamic.select(&available);
        let (result, stats) = execute(&store, &q.env, &chosen.plan);
        println!(
            "{label}: plan requiring {:?} -> {} rows, {:.3} s simulated I/O",
            chosen.requires,
            result.len(),
            stats.disk.total_s
        );
    }
}
