//! Physical properties and goal-directed search (Queries 2 and 3,
//! Figures 8–11), plus the index-availability sweep of Table 3.
//!
//! The star of this example is the *present-in-memory* property: asking
//! for the mayor's age (Query 3) makes the bare index scan infeasible, and
//! the assembly **enforcer** — not any logical rewrite — finds the plan
//! that assembles only the two surviving mayors.
//!
//! ```sh
//! cargo run --example physical_properties
//! ```

use open_oodb::core::config::rule_names as rn;
use open_oodb::prelude::*;

fn compile(
    src: &str,
    model: &open_oodb::object::paper::PaperModel,
    catalog: &Catalog,
) -> open_oodb::zql::SimplifiedQuery {
    open_oodb::zql::compile(src, &model.schema, catalog).expect("query compiles")
}

fn main() {
    let (store, model) = generate_paper_db(GenConfig {
        scale_div: 10,
        ..Default::default()
    });

    let q2 = r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#;
    let q3 = r#"SELECT Newobject(c.mayor().age(), c.name())
FROM City c IN Cities WHERE c.mayor().name() == "Joe""#;

    // --- Query 2: the index scan answers everything -----------------------
    println!("Query 2: {q2}\n");
    let q = compile(q2, &model, &model.catalog);
    let out = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules())
        .optimize(&q.plan, q.result_vars)
        .unwrap();
    println!(
        "With the path index, the whole query collapses ({:.2} s):\n{}",
        out.cost.total(),
        render_physical(&q.env, &out.plan)
    );

    // Drop the index (ObjectStore-style "the user deleted an index"):
    // the optimizer adapts without recompiling anything else.
    let no_index = model.catalog.with_only_indexes(&[]);
    let q = compile(q2, &model, &no_index);
    let out = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules())
        .optimize(&q.plan, q.result_vars)
        .unwrap();
    println!(
        "Same query, index dropped ({:.2} s):\n{}",
        out.cost.total(),
        render_physical(&q.env, &out.plan)
    );

    // --- Query 3: the enforcer earns its keep ------------------------------
    println!("Query 3 (mayor's age required): {q3}\n");
    let q = compile(q3, &model, &model.catalog);
    let out = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules())
        .optimize(&q.plan, q.result_vars)
        .unwrap();
    println!(
        "Goal-directed plan — assembly as ENFORCER over the index scan \
         ({:.2} s):\n{}",
        out.cost.total(),
        render_physical(&q.env, &out.plan)
    );
    let (result, stats) = execute(&store, &q.env, &out.plan);
    println!(
        "executed: {} rows, {} simulated pages\n",
        result.len(),
        stats.disk.pages()
    );

    // What a purely algebraic optimizer would be stuck with:
    let q = compile(q3, &model, &model.catalog);
    let out = OpenOodb::with_config(
        &q.env,
        OptimizerConfig::without(&[
            rn::ASSEMBLY_ENFORCER,
            rn::COLLAPSE_TO_INDEX_SCAN,
            rn::MAT_TO_JOIN,
        ]),
    )
    .optimize(&q.plan, q.result_vars)
    .unwrap();
    println!(
        "Without enforcers (logical-only optimization, {:.2} s — three\n\
         orders of magnitude at paper scale):\n{}",
        out.cost.total(),
        render_physical(&q.env, &out.plan)
    );

    // --- Table 3 in miniature: cost-based beats greedy ----------------------
    let q4 = r#"SELECT t FROM Task t IN Tasks
WHERE t.time() == 100
  && EXISTS (SELECT m FROM m IN t.team_members() WHERE m.name() == "Fred")"#;
    println!("Query 4: {q4}\n");
    let q = compile(q4, &model, &model.catalog);
    let out = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules())
        .optimize(&q.plan, q.result_vars)
        .unwrap();
    let greedy =
        greedy_plan(&q.env, CostParams::default(), &q.plan).expect("greedy handles this shape");
    let greedy_cost = greedy.total_io_s() + greedy.total_cpu_s();
    println!(
        "Cost-based ({:.2} s) uses ONLY the time index:\n{}",
        out.cost.total(),
        render_physical(&q.env, &out.plan)
    );
    println!(
        "Greedy ({greedy_cost:.2} s) grabs BOTH indexes and loses by {:.1}x:\n{}",
        greedy_cost / out.cost.total(),
        render_physical(&q.env, &greedy)
    );
}
