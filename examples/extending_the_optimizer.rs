//! Extending the optimizer — the "research workbench" story.
//!
//! The paper's first stated goal is extensibility: new algebraic
//! operators, execution algorithms, rules, and enforcers should slot in
//! without touching the search engine. This example demonstrates two
//! extensions:
//!
//! 1. enabling **warm-start assembly** (the paper's Lesson 7 future-work
//!    algorithm): scan the referenced collection sequentially into memory
//!    before assembling, beating per-reference faults whenever references
//!    far outnumber the collection's pages;
//! 2. registering a **custom transformation rule** on top of the standard
//!    rule set through `OpenOodb::with_rule_set`.
//!
//! ```sh
//! cargo run --example extending_the_optimizer
//! ```

use open_oodb::core::model::OodbModel;
use open_oodb::core::rules::rule_set;
use open_oodb::prelude::*;
use open_oodb::volcano::{Expr, Memo, Rewrite, TransformRule};

/// A (deliberately simple) custom rule: eliminate selections whose
/// predicate is the empty conjunction (`true`). Nothing in the standard
/// rule set produces them, but a front end might.
struct TrueSelectElim;

impl<'e> TransformRule<OodbModel<'e>> for TrueSelectElim {
    fn name(&self) -> &'static str {
        "true-select-elimination"
    }
    fn apply(
        &self,
        model: &OodbModel<'e>,
        _memo: &Memo<OodbModel<'e>>,
        expr: &Expr<OodbModel<'e>>,
    ) -> Vec<Rewrite<LogicalOp>> {
        if let LogicalOp::Select { pred } = &expr.op {
            if model.env.preds.pred(*pred).terms.is_empty() {
                // Select[true](X) ≡ X: assert group equivalence.
                return vec![Rewrite::Group(expr.children[0])];
            }
        }
        vec![]
    }
}

fn main() {
    let m = paper_model();

    // A query whose best 1993 plan chases 10,000 references: Query 2 with
    // the path index unavailable.
    let catalog = m.catalog.with_only_indexes(&[]);
    let src = r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#;

    // --- Baseline 1993 rule set -------------------------------------------
    let q = open_oodb::zql::compile(src, &m.schema, &catalog).unwrap();
    let out = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules())
        .optimize(&q.plan, q.result_vars)
        .unwrap();
    println!(
        "1993 rule set, no index ({:.2} s):\n{}",
        out.cost.total(),
        render_physical(&q.env, &out.plan)
    );

    // --- Extension 1: warm-start assembly ---------------------------------
    let q = open_oodb::zql::compile(src, &m.schema, &catalog).unwrap();
    let config = OptimizerConfig {
        enable_warm_assembly: true,
        ..OptimizerConfig::all_rules()
    };
    let out = OpenOodb::with_config(&q.env, config)
        .optimize(&q.plan, q.result_vars)
        .unwrap();
    println!(
        "With warm-start assembly enabled ({:.2} s) — one sequential sweep\n\
         of extent(Person) replaces 10,000 faults:\n{}",
        out.cost.total(),
        render_physical(&q.env, &out.plan)
    );
    assert!(
        out.plan
            .contains_op(&|op| matches!(op, PhysicalOp::WarmAssembly { .. }))
            || out.cost.total() < 10.0,
        "warm assembly should win or something even better must exist"
    );

    // --- Extension 2: a custom transformation rule -------------------------
    // Build a query with a vacuous selection the standard rules can't
    // remove, then watch the custom rule erase it.
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (cities, c) = qb.get(m.ids.cities, "c");
    let true_pred = qb.conj(vec![]); // empty conjunction = true
    let plan = qb.select(cities, true_pred);
    let env = qb.into_env();

    let config = OptimizerConfig::all_rules();
    let mut rules = rule_set(&config);
    rules.transforms.push(Box::new(TrueSelectElim));
    let optimizer = OpenOodb::with_rule_set(&env, CostParams::default(), config, rules);
    let out = optimizer.optimize(&plan, VarSet::single(c)).unwrap();
    println!(
        "Custom rule erased Select[true] — the plan is a bare scan:\n{}",
        render_physical(&env, &out.plan)
    );
    assert!(matches!(out.plan.op, PhysicalOp::FileScan { .. }));
    println!(
        "Rules, algorithms, properties and costs all extend without touching\n\
         the generated search engine — \"the modularization prescribed by the\n\
         optimizer generator will enable us and other developers to extend and\n\
         refine the Open OODB query optimizer.\""
    );
}
