//! A tiny, dependency-free, offline drop-in for the subset of the `rand`
//! 0.8 API this workspace uses (`SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The container this repository builds in has no crates.io access, so the
//! real `rand` cannot be vendored; data generation only needs a seeded,
//! deterministic, reasonably-mixed PRNG, which the xoshiro-style generator
//! below provides. Streams differ from upstream `rand`, but every consumer
//! in this workspace treats the stream as an arbitrary fixed seed.

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is
/// provided; that is the only one the workspace calls).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.sample_f64() < p
    }

    /// Uniform `f64` in `[0, 1)`.
    fn sample_f64(&mut self) -> f64 {
        // 53 mantissa bits of a u64 mapped to [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xorshift64* family),
    /// API-compatible with `rand::rngs::SmallRng` for the calls this
    /// workspace makes.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s0: u64,
        s1: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into two non-zero words.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s0 = next();
            let s1 = next();
            SmallRng {
                s0: if s0 == 0 { 0x853c49e6748fea9b } else { s0 },
                s1: if s1 == 0 { 0xda3e39cb94b95bdb } else { s1 },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift128+ step.
            let mut x = self.s0;
            let y = self.s1;
            self.s0 = y;
            x ^= x << 23;
            self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
            self.s1.wrapping_add(y)
        }
    }
}

/// Distribution support (only the uniform-range sampling the workspace
/// needs).
pub mod distributions {
    /// Uniform sampling over ranges.
    pub mod uniform {
        use crate::{Rng, RngCore};
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce one uniform sample.
        pub trait SampleRange<T> {
            /// Draws one sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! int_ranges {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = (rng.next_u64() as u128) % span;
                        (self.start as i128 + v as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let v = (rng.next_u64() as u128) % span;
                        (lo as i128 + v as i128) as $t
                    }
                }
            )*};
        }
        int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "empty range");
                self.start + rng.sample_f64() * (self.end - self.start)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(18i64..90);
            assert!((18..90).contains(&v));
            let w = r.gen_range(1u32..=12);
            assert!((1..=12).contains(&w));
            let f = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_bool_rates() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "{hits}");
    }
}
