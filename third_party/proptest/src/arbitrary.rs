//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy generating arbitrary values of `T`; built by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T` (`any::<bool>()`, `any::<i64>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
