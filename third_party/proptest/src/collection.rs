//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// An inclusive length band for generated collections, convertible from
/// `a..b` (half-open, like the real crate) or an exact `usize`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_inclusive(self.size.min, self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
