//! The `Strategy` trait and the combinators this workspace uses: map,
//! flat-map, boxing, constants, unions, numeric ranges, tuples, and a
//! small `[class]{m,n}` string-pattern strategy.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: a
/// strategy just draws one value per case from the runner's PRNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let seed = self.inner.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

/// A type-erased, reference-counted strategy (clonable, usable in
/// recursive strategy definitions).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives — the engine behind
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T: Debug> Union<T> {
    /// Builds a union over a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union(options)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// String patterns: a `&'static str` of the form `"[class]{m,n}"` (or
/// `"[class]{n}"`) is itself a strategy generating matching strings.
/// Character classes support literal characters and `a-z` ranges. Other
/// regex forms are not supported and panic with a clear message.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern strategy: {self:?}"));
        let len = rng.usize_inclusive(min, max);
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let chars = expand_class(&rest[..close]);
    if chars.is_empty() {
        return None;
    }
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n: usize = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((chars, min, max))
}

fn expand_class(class: &str) -> Vec<char> {
    let cs: Vec<char> = class.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < cs.len() {
        // `a-z` is a range unless the dash is the final character.
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            for c in cs[i]..=cs[i + 2] {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(cs[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        // Any fixed stream works for these checks.
        TestRng::from_seed_for_tests(0xdeadbeef)
    }

    #[test]
    fn pattern_parses_workspace_class() {
        let (chars, min, max) = parse_pattern("[a-zA-Z0-9 _-]{0,40}").unwrap();
        assert_eq!((min, max), (0, 40));
        for c in ['a', 'z', 'A', 'Z', '0', '9', ' ', '_', '-'] {
            assert!(chars.contains(&c), "{c:?}");
        }
        assert_eq!(chars.len(), 26 + 26 + 10 + 3);
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let (a, b) = (1i64..=10, 0usize..7).generate(&mut r);
            assert!((1..=10).contains(&a));
            assert!(b < 7);
        }
    }

    #[test]
    fn union_and_map_cover_arms() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(0u8), Just(1u8), 2u8..4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }
}
