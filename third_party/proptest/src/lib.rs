//! A tiny, dependency-free, offline drop-in for the subset of the
//! `proptest` 1.x API this workspace uses.
//!
//! The build container has no crates.io access, so the real `proptest`
//! cannot be vendored. This reimplementation keeps the surface the tests
//! rely on — `proptest!`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `Strategy` with `prop_map`/`prop_flat_map`/`boxed`, `Just`, ranges,
//! tuples, `collection::vec`, `any`, and a `[class]{m,n}` string pattern —
//! backed by a deterministic per-test PRNG. It generates and checks random
//! cases but does **not** shrink failures; a failing case prints its full
//! `Debug` input instead.

pub mod strategy;

pub mod test_runner;

pub mod arbitrary;

pub mod collection;

/// The glob-import module mirrored from the real crate.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares a block of property tests.
///
/// Supports an optional leading `#![proptest_config(expr)]`, then any
/// number of functions of the form
/// `#[test] fn name(arg in strategy, ...) { body }`. The body runs once
/// per generated case inside a closure returning
/// `Result<(), TestCaseError>`, so `prop_assert!` failures and explicit
/// `return Ok(())` both work.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new(
                    $config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let strat = ($($strat,)+);
                runner.run(&strat, |($($arg,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Uniform choice between several strategies producing the same value
/// type. (Weights are not supported; none of this workspace uses them.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (with the generated inputs printed) instead of panicking
/// immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}
