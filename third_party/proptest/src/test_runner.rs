//! Deterministic case runner: a seeded PRNG per test (seeded from the
//! test's module path + name, so runs are reproducible) driving N
//! generated cases through the test closure.

use crate::strategy::Strategy;
use std::fmt;

/// Per-block configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to generate and check.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property check (no shrinking: carries the message only; the
/// runner prints the generated inputs alongside it).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator handed to strategies (xorshift128+ seeded via
/// SplitMix64 from a name hash).
#[derive(Clone, Debug)]
pub struct TestRng {
    s0: u64,
    s1: u64,
}

impl TestRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let s0 = next();
        let s1 = next();
        TestRng {
            s0: if s0 == 0 { 0x853c49e6748fea9b } else { s0 },
            s1: if s1 == 0 { 0xda3e39cb94b95bdb } else { s1 },
        }
    }

    /// Test-only constructor (the runner normally owns seeding).
    #[doc(hidden)]
    pub fn from_seed_for_tests(seed: u64) -> Self {
        TestRng::seed_from_u64(seed)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo) as u64 + 1) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs the configured number of cases for one test function.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner whose PRNG is seeded from `name`, so each test
    /// sees a stable, test-specific stream.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let rng = TestRng::seed_from_u64(fnv1a(name));
        TestRunner { config, name, rng }
    }

    /// Generates `config.cases` values and applies `test` to each,
    /// panicking (like a failed `assert!`) on the first case that
    /// returns an error.
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let value = strategy.generate(&mut self.rng);
            let shown = format!("{value:?}");
            if let Err(e) = test(value) {
                panic!(
                    "proptest failure in {} (case {}/{}): {}\n  input: {}",
                    self.name,
                    case + 1,
                    self.config.cases,
                    e,
                    shown
                );
            }
        }
    }
}
