//! A tiny, dependency-free, offline drop-in for the subset of the
//! `criterion` 0.5 API this workspace's benches use.
//!
//! The build container has no crates.io access, so the real `criterion`
//! cannot be vendored. This stand-in keeps the bench files compiling and
//! *measuring* — it calibrates an iteration count per benchmark, runs
//! the configured number of samples, and prints mean / min / max wall
//! time — but it does no statistical analysis, plotting, or baselines.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// A named benchmark, optionally parameterized (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function/parameter`-style id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        self.run(&id.to_string(), &mut f);
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
    }

    /// Ends the group (statistics were printed per benchmark).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibration pass: one iteration to size the per-sample batch.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let target_per_sample = self.measurement_time / (self.sample_size as u32).max(1);
        let iters = (target_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed / iters as u32);
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{:<40} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples x {} iters)",
            self.name,
            id,
            mean,
            min,
            max,
            samples.len(),
            iters
        );
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` (results are black-boxed).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collects benchmark functions into a runner function named `$name`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
