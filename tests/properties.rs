//! Property-based integration tests (proptest): random conjunctive
//! queries over the generated database, checking that
//!
//! * the optimizer always finds a plan and it never estimates worse than
//!   the naive (transformation-free) plan;
//! * the optimal plan, the naive plan, and a direct per-object oracle all
//!   agree on the result set;
//! * core data structures (VarSet, the memo) uphold their invariants
//!   under randomized use.

use oodb_core::{OpenOodb, OptimizerConfig};
use oodb_object::paper::PaperModel;
use open_oodb::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

fn db() -> &'static (Store, PaperModel) {
    static DB: OnceLock<(Store, PaperModel)> = OnceLock::new();
    DB.get_or_init(|| {
        generate_paper_db(GenConfig {
            scale_div: 100,
            ..Default::default()
        })
    })
}

/// One atomic predicate of the random query, as an abstract description.
#[derive(Clone, Debug)]
enum Cond {
    AgeGe(i64),
    SalaryLt(i64),
    NameEq(usize),
    DeptFloorEq(i64),
    PlantLocDallas,
    JobGradeGe(i64),
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    prop_oneof![
        (18i64..70).prop_map(Cond::AgeGe),
        (20_000i64..150_000).prop_map(Cond::SalaryLt),
        (0usize..100).prop_map(Cond::NameEq),
        (1i64..=10).prop_map(Cond::DeptFloorEq),
        Just(Cond::PlantLocDallas),
        (1i64..16).prop_map(Cond::JobGradeGe),
    ]
}

fn emp_name(i: usize) -> String {
    if i == 0 {
        "Fred".to_string()
    } else {
        format!("e{i:05}")
    }
}

/// Evaluates a condition directly against the store — the oracle.
fn oracle_holds(store: &Store, m: &PaperModel, e: oodb_object::Oid, c: &Cond) -> bool {
    let ids = &m.ids;
    match c {
        Cond::AgeGe(k) => store.read_field(e, ids.person_age).as_int().unwrap() >= *k,
        Cond::SalaryLt(k) => store.read_field(e, ids.emp_salary).as_int().unwrap() < *k,
        Cond::NameEq(i) => store.read_field(e, ids.person_name) == &Value::str(&emp_name(*i)),
        Cond::DeptFloorEq(k) => {
            store.eval_path(e, &[ids.emp_dept], ids.dept_floor) == Value::Int(*k)
        }
        Cond::PlantLocDallas => {
            store.eval_path(e, &[ids.emp_dept, ids.dept_plant], ids.plant_location)
                == Value::str("Dallas")
        }
        Cond::JobGradeGe(k) => store
            .eval_path(e, &[ids.emp_job], ids.job_pay_grade)
            .partial_cmp_val(&Value::Int(*k))
            .is_some_and(|o| o != std::cmp::Ordering::Less),
    }
}

/// Builds the simplified-algebra query for a set of conditions.
fn build_query(
    m: &PaperModel,
    conds: &[Cond],
) -> (
    oodb_algebra::QueryEnv,
    LogicalPlan,
    VarSet,
    oodb_algebra::VarId,
) {
    use oodb_algebra::{CmpOp, Operand, Term};
    let ids = &m.ids;
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (mut plan, e) = qb.get(ids.employees, "e");
    let mut d = None;
    let mut dp = None;
    let mut j = None;
    // Materialize components lazily, sharing variables — what the ZQL
    // simplifier would do.
    for c in conds {
        match c {
            Cond::DeptFloorEq(_) if d.is_none() => {
                let (p, v) = qb.mat(plan, e, ids.emp_dept, "d");
                plan = p;
                d = Some(v);
            }
            Cond::PlantLocDallas => {
                if d.is_none() {
                    let (p, v) = qb.mat(plan, e, ids.emp_dept, "d");
                    plan = p;
                    d = Some(v);
                }
                if dp.is_none() {
                    let (p, v) = qb.mat(plan, d.unwrap(), ids.dept_plant, "dp");
                    plan = p;
                    dp = Some(v);
                }
            }
            Cond::JobGradeGe(_) if j.is_none() => {
                let (p, v) = qb.mat(plan, e, ids.emp_job, "j");
                plan = p;
                j = Some(v);
            }
            _ => {}
        }
    }
    let attr = |var, field| Operand::Attr { var, field };
    let term = |left, op, right| Term { left, op, right };
    let terms: Vec<Term> = conds
        .iter()
        .map(|c| match c {
            Cond::AgeGe(k) => term(
                attr(e, ids.person_age),
                CmpOp::Ge,
                Operand::Const(Value::Int(*k)),
            ),
            Cond::SalaryLt(k) => term(
                attr(e, ids.emp_salary),
                CmpOp::Lt,
                Operand::Const(Value::Int(*k)),
            ),
            Cond::NameEq(i) => term(
                attr(e, ids.person_name),
                CmpOp::Eq,
                Operand::Const(Value::str(&emp_name(*i))),
            ),
            Cond::DeptFloorEq(k) => term(
                attr(d.unwrap(), ids.dept_floor),
                CmpOp::Eq,
                Operand::Const(Value::Int(*k)),
            ),
            Cond::PlantLocDallas => term(
                attr(dp.unwrap(), ids.plant_location),
                CmpOp::Eq,
                Operand::Const(Value::str("Dallas")),
            ),
            Cond::JobGradeGe(k) => term(
                attr(j.unwrap(), ids.job_pay_grade),
                CmpOp::Ge,
                Operand::Const(Value::Int(*k)),
            ),
        })
        .collect();
    let pred = qb.conj(terms);
    let plan = qb.select(plan, pred);
    (qb.into_env(), plan, VarSet::single(e), e)
}

/// Every transformation disabled: the plan executes literally as written.
fn naive_config() -> OptimizerConfig {
    use oodb_core::config::rule_names as rn;
    OptimizerConfig::without(&[
        rn::SELECT_SPLIT,
        rn::SELECT_MAT_SWAP,
        rn::SELECT_UNNEST_SWAP,
        rn::SELECT_JOIN_PUSH,
        rn::SELECT_INTO_JOIN,
        rn::MAT_TO_JOIN,
        rn::JOIN_COMMUTE,
        rn::JOIN_ASSOC,
        rn::MAT_MAT_SWAP,
        rn::MAT_JOIN_PUSH,
        rn::COLLAPSE_TO_INDEX_SCAN,
        rn::POINTER_JOIN,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Optimal and naive plans return the oracle's result set, and the
    /// optimizer never estimates the optimal plan above the naive one.
    #[test]
    fn random_queries_agree_with_oracle(
        conds in proptest::collection::vec(cond_strategy(), 1..4)
    ) {
        let (store, m) = db();
        let expected: std::collections::HashSet<oodb_object::Oid> = store
            .members(m.ids.employees)
            .iter()
            .copied()
            .filter(|&e| conds.iter().all(|c| oracle_holds(store, m, e, c)))
            .collect();

        let (env, plan, result_vars, e_var) = build_query(m, &conds);
        let optimal = OpenOodb::with_config(&env, OptimizerConfig::all_rules())
            .optimize(&plan, result_vars)
            .expect("optimal plan");
        let naive = OpenOodb::with_config(&env, naive_config())
            .optimize(&plan, result_vars)
            .expect("naive plan");
        prop_assert!(
            optimal.cost.total() <= naive.cost.total() + 1e-9,
            "optimal {} must not exceed naive {}",
            optimal.cost.total(),
            naive.cost.total()
        );

        for out in [&optimal, &naive] {
            let (result, _) = execute(store, &env, &out.plan);
            let got: std::collections::HashSet<oodb_object::Oid> =
                result.tuples().iter().map(|t| t.get(e_var)).collect();
            prop_assert_eq!(&got, &expected);
        }
    }

    /// Every randomly generated valid algebra tree passes the static
    /// linter, and the winning physical plan passes full verification
    /// (linter + property checker + cost sanity).
    #[test]
    fn linter_accepts_random_valid_queries(
        conds in proptest::collection::vec(cond_strategy(), 1..4)
    ) {
        use oodb_core::verify;
        let (_, m) = db();
        let (env, plan, result_vars, _) = build_query(m, &conds);
        let diags = verify::lint_logical(&env, &plan);
        prop_assert!(diags.is_empty(), "linter rejected a valid tree: {diags:?}");
        let out = OpenOodb::with_config(&env, OptimizerConfig::all_rules())
            .optimize(&plan, result_vars)
            .expect("optimal plan");
        prop_assert!(
            out.diagnostics.is_empty(),
            "verifier flagged a sound winning plan: {:?}",
            out.diagnostics
        );
    }

    /// VarSet behaves like a HashSet<usize> under random operations.
    #[test]
    fn varset_models_hashset(ops in proptest::collection::vec((0usize..64, any::<bool>()), 0..40)) {
        use std::collections::HashSet;
        let mut vs = VarSet::EMPTY;
        let mut hs: HashSet<usize> = HashSet::new();
        for (i, insert) in ops {
            let v = oodb_algebra::VarId::from_index(i);
            if insert {
                vs = vs.insert(v);
                hs.insert(i);
            } else {
                vs = vs.remove(v);
                hs.remove(&i);
            }
            prop_assert_eq!(vs.len() as usize, hs.len());
            prop_assert_eq!(vs.contains(v), hs.contains(&i));
        }
        let listed: HashSet<usize> = vs.iter().map(|v| v.index()).collect();
        prop_assert_eq!(listed, hs);
    }

    /// Date construction is monotone in (y, m, d) — the ADT ordering the
    /// Figure 1 query relies on.
    #[test]
    fn date_is_monotone(
        y1 in 1900i32..2100, m1 in 1u32..=12, d1 in 1u32..=31,
        y2 in 1900i32..2100, m2 in 1u32..=12, d2 in 1u32..=31,
    ) {
        use open_oodb::object::Date;
        let a = Date::from_ymd(y1, m1, d1);
        let b = Date::from_ymd(y2, m2, d2);
        let lex = (y1, m1, d1).cmp(&(y2, m2, d2));
        prop_assert_eq!(a.cmp(&b), lex);
    }
}

/// Mutation test 1 — dropped `Mat` link: splicing the `Mat d` node out of
/// `Select(Mat d (Get e))` leaves the predicate's `d` unbound, and the
/// linter must pinpoint the root `Select` (path `root`), not merely fail.
#[test]
fn linter_pinpoints_dropped_mat_link() {
    use oodb_core::verify::{self, checks};
    let (_, m) = db();
    let (env, plan, ..) = build_query(m, &[Cond::DeptFloorEq(3)]);
    assert!(verify::lint_logical(&env, &plan).is_empty());
    // Splice: Select directly over Get, Mat gone.
    let broken = LogicalPlan {
        op: plan.op.clone(),
        children: vec![plan.children[0].children[0].clone()],
    };
    let diags = verify::lint_logical(&env, &broken);
    let hit = diags
        .iter()
        .find(|d| d.check == checks::UNBOUND_VAR)
        .unwrap_or_else(|| panic!("expected unbound-var, got {diags:?}"));
    assert_eq!(hit.path, Vec::<usize>::new(), "culprit is the root Select");
    assert_eq!(hit.op, "Select");
    assert_eq!(hit.path_string(), "root");
}

/// Mutation test 2 — swapped binding: rebinding the `Mat` to the `Get`
/// variable (whose origin is a scan, not a link) must be flagged at the
/// Mat's exact position with an origin mismatch.
#[test]
fn linter_pinpoints_swapped_binding() {
    use oodb_core::verify::{self, checks};
    let (_, m) = db();
    let (env, plan, _, e_var) = build_query(m, &[Cond::DeptFloorEq(3)]);
    let mut broken = plan.clone();
    broken.children[0].op = oodb_algebra::LogicalOp::Mat { out: e_var };
    let diags = verify::lint_logical(&env, &broken);
    let hit = diags
        .iter()
        .find(|d| d.check == checks::ORIGIN_MISMATCH)
        .unwrap_or_else(|| panic!("expected origin-mismatch, got {diags:?}"));
    assert_eq!(hit.path, vec![0], "culprit is the Mat under the Select");
    assert_eq!(hit.path_string(), "root.0");
    // Rebinding an already-bound variable is also a duplicate binding.
    assert!(diags
        .iter()
        .any(|d| d.check == checks::DUPLICATE_BINDING && d.path == vec![0]));
}

/// Mutation test 3 — removed enforcer: stripping the assembly out of
/// Query 3's winning plan (Alg-Project over Assembly over index scan)
/// leaves the projection reading an object that is never brought into
/// memory; the property checker must blame the Alg-Project at the root.
#[test]
fn property_checker_pinpoints_removed_enforcer() {
    use oodb_bench::queries;
    use oodb_core::verify::{self, checks};
    let (_, m) = db();
    let q = queries::query3(m);
    let out = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules())
        .optimize(&q.plan, q.result_vars)
        .expect("query 3 plan");
    assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    assert!(matches!(
        out.plan.children[0].op,
        oodb_algebra::PhysicalOp::Assembly { .. }
    ));
    // Strip the enforcer: project directly over the scan.
    let mut broken = out.plan.clone();
    broken.children = broken.children[0].children.clone();
    let diags = verify::check_physical_props(&q.env, &broken, oodb_algebra::PhysProps::NONE);
    let hit = diags
        .iter()
        .find(|d| d.check == checks::INPUT_NOT_IN_MEMORY)
        .unwrap_or_else(|| panic!("expected input-not-in-memory, got {diags:?}"));
    assert_eq!(hit.path, Vec::<usize>::new(), "culprit is the root project");
    assert_eq!(hit.op, "Alg-Project");
}

/// Memo invariants under exploration of a random-size join tree: the
/// number of expressions in the root group of an n-way join chain with
/// commutativity and associativity follows the known series, and
/// re-exploration is a fixpoint.
#[test]
fn memo_join_enumeration_invariants() {
    use open_oodb::volcano::toy::{toy_rules, Toy, ToyOp, ToySort};
    use open_oodb::volcano::{Optimizer, SearchConfig};

    // For n base tables, a root group under {commute, assoc} holds
    // 2 * (2^(n-1) - 1) expressions... empirically: n=2 → 2, n=3 → 6,
    // n=4 → 14 (each split of the table set into two non-empty halves,
    // ordered).
    let expected = [2usize, 6, 14];
    for (idx, n) in (2u32..=4).enumerate() {
        let model = Toy {
            cards: (0..n).map(|i| 10.0 * (i + 1) as f64).collect(),
        };
        let rules = toy_rules();
        let mut opt = Optimizer::new(&model, &rules, SearchConfig::default());
        let mut g = opt.memo.insert(&model, ToyOp::Table(0), vec![]).0;
        for t in 1..n {
            let leaf = opt.memo.insert(&model, ToyOp::Table(t), vec![]).0;
            g = opt.memo.insert(&model, ToyOp::Join, vec![g, leaf]).0;
        }
        opt.explore_all();
        assert_eq!(opt.memo.group_exprs(g).len(), expected[idx], "n = {n}");
        let before = opt.memo.expr_count();
        opt.explore_all();
        assert_eq!(opt.memo.expr_count(), before, "fixpoint must be stable");
        // And optimization still works after heavy merging.
        assert!(opt.run(g, ToySort::default()).is_some());
    }
}
