//! Deterministic crash harness for the durability layer: a WAL built from
//! real mutations over the paper database is killed at **every** record
//! boundary and at hundreds of seeded mid-record offsets, then recovered.
//! The invariants are absolute — recovery never panics, never replays a
//! corrupt record, and always lands on the longest valid prefix, whose
//! store is digest-identical (and Q1–Q4 result-identical) to an oracle
//! built by applying the same record prefix in memory.
//!
//! The kill schedule is deterministic per seed. Failures print the seed;
//! re-run with `OODB_CRASH_SEED=<seed>` to reproduce.

use oodb_core::{CostParams, OptimizerConfig};
use oodb_fault::{WriteFaultConfig, WriteFaultInjector};
use oodb_service::QueryService;
use oodb_storage::{generate_paper_db, GenConfig, Store};
use oodb_wal::{
    apply_record, apply_to, frame_boundaries, load_checkpoint, recover, store_digest, FlushPolicy,
    ScratchDir, WalRecord, WalSession, CHECKPOINT_FILE, WAL_FILE, WAL_HEADER,
};
use std::path::Path;

/// The paper's four query shapes (Q1–Q4).
const QUERIES: &[&str] = &[
    "SELECT Newobject(e.name(), e.job().name(), e.dept().name()) \
     FROM Employee e IN Employees \
     WHERE e.dept().plant().location() == \"Dallas\"",
    r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#,
    r#"SELECT Newobject(c.mayor().age(), c.name()) FROM City c IN Cities WHERE c.mayor().name() == "Joe""#,
    "SELECT t FROM Task t IN Tasks WHERE t.time() == 100 \
     && EXISTS (SELECT m FROM m IN t.team_members() WHERE m.name() == \"Fred\")",
];

/// Seed for the kill schedule: fixed by default, overridable for CI's
/// randomized leg. Printed so a failing run is reproducible.
fn crash_seed() -> u64 {
    let seed = std::env::var("OODB_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xBAD_C0DE);
    eprintln!("crash seed: {seed} (set OODB_CRASH_SEED to override)");
    seed
}

/// splitmix64 step — the same deterministic generator the fault layer
/// uses, kept local so the kill schedule is independent of library state.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fresh_store() -> Store {
    generate_paper_db(GenConfig {
        scale_div: 100,
        ..Default::default()
    })
    .0
}

/// A mutation script exercising every record kind the live service logs:
/// statistics refreshes, a membership rewrite, catalog replacement, and
/// index rebuilds.
fn mutation_script(store: &Store) -> Vec<WalRecord> {
    let mut script = vec![
        WalRecord::StatsRefresh { buckets: 8 },
        WalRecord::BuildIndexes { bump_epoch: true },
    ];
    // Shrink one collection by a member, as a delete would.
    if let Some((coll, members)) = store
        .catalog()
        .collections()
        .map(|(coll, _)| (coll, store.members(coll)))
        .find(|(_, m)| m.len() > 2)
    {
        script.push(WalRecord::SetMembers {
            coll,
            oids: members[..members.len() - 1].to_vec(),
        });
    }
    script.extend([
        WalRecord::StatsRefresh { buckets: 16 },
        WalRecord::SetCatalog {
            catalog: store.catalog().clone(),
        },
        WalRecord::BuildIndexes { bump_epoch: true },
        WalRecord::StatsRefresh { buckets: 24 },
        WalRecord::StatsRefresh { buckets: 40 },
    ]);
    script
}

/// Builds a durability directory: checkpoint of the pristine store plus a
/// log of the whole mutation script, each record applied after it is
/// acknowledged (the service's log-then-apply order). Returns the final
/// store and the logged records.
fn build_log(dir: &Path) -> (Store, Vec<WalRecord>) {
    let mut store = fresh_store();
    let mut session =
        WalSession::create(dir, &store, FlushPolicy::EveryRecord, None).expect("session creates");
    let script = mutation_script(&store);
    for rec in &script {
        session.append(rec).expect("append acknowledged");
        apply_to(&mut store, rec).expect("live apply succeeds");
    }
    session.flush().expect("final flush");
    (store, script)
}

/// Digest of the store after replaying the checkpoint plus the first
/// `k` records, for every `k` — the oracle the crash points compare to.
fn oracle_digests(dir: &Path, script: &[WalRecord]) -> Vec<u64> {
    let (_, ckpt) = load_checkpoint(&dir.join(CHECKPOINT_FILE)).expect("checkpoint loads");
    let mut slot: Option<Store> = None;
    for rec in &ckpt {
        apply_record(&mut slot, rec).expect("checkpoint replays");
    }
    let mut store = slot.expect("checkpoint yields a store");
    let mut digests = vec![store_digest(&store)];
    for rec in script {
        apply_to(&mut store, rec).expect("oracle apply succeeds");
        digests.push(store_digest(&store));
    }
    digests
}

/// Copies the checkpoint and a damaged log image into a fresh directory,
/// simulating the state a crash left on disk.
fn stage_crash(src: &Path, wal_image: &[u8], tag: &str) -> ScratchDir {
    let dst = ScratchDir::new(tag).expect("scratch dir");
    std::fs::copy(src.join(CHECKPOINT_FILE), dst.path().join(CHECKPOINT_FILE))
        .expect("copy checkpoint");
    std::fs::write(dst.path().join(WAL_FILE), wal_image).expect("write damaged log");
    dst
}

/// Sorted Q1–Q4 result rows for a store.
fn query_rows(store: Store) -> Vec<Vec<String>> {
    let svc = QueryService::new(
        store,
        CostParams::default(),
        OptimizerConfig::all_rules(),
        64,
        4,
    );
    QUERIES
        .iter()
        .map(|q| {
            let mut rows = svc.submit(q).expect("query runs on recovered store").rows;
            rows.sort();
            rows
        })
        .collect()
}

/// Kills the log at every record boundary (including the empty log) and
/// at 220 seeded mid-record offsets. Every crash point must recover
/// without panicking to exactly the longest valid prefix.
#[test]
fn crash_at_every_boundary_and_seeded_offsets() {
    let seed = crash_seed();
    let dir = ScratchDir::new("crash-matrix").expect("scratch dir");
    let (final_store, script) = build_log(dir.path());
    let wal_bytes = std::fs::read(dir.path().join(WAL_FILE)).expect("read log");
    let boundaries = frame_boundaries(&wal_bytes, WAL_HEADER);
    assert_eq!(boundaries.len(), script.len(), "one frame per record");

    let digests = oracle_digests(dir.path(), &script);
    assert_eq!(
        *digests.last().expect("nonempty"),
        store_digest(&final_store),
        "oracle replay must land on the live store"
    );

    // Crash points: just-the-header, every record boundary, and seeded
    // mid-record offsets strictly inside the frame stream.
    let mut cuts = vec![WAL_HEADER];
    cuts.extend_from_slice(&boundaries);
    let mut state = seed;
    let span = wal_bytes.len() - WAL_HEADER - 1;
    for _ in 0..220 {
        cuts.push(WAL_HEADER + 1 + (splitmix(&mut state) as usize) % span);
    }

    for cut in cuts {
        let crash = stage_crash(dir.path(), &wal_bytes[..cut], "cut");
        let (store, report) =
            recover(crash.path()).unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        let replayed = boundaries.iter().take_while(|&&b| b <= cut).count();
        assert_eq!(
            report.replayed_records as usize, replayed,
            "cut at {cut}: wrong prefix length"
        );
        assert!(
            report.stopped.is_none(),
            "cut at {cut}: clean truncation must not report corruption: {:?}",
            report.stopped
        );
        let last_ok = boundaries[..replayed].last().copied().unwrap_or(WAL_HEADER);
        assert_eq!(
            report.torn_tail_bytes as usize,
            cut - last_ok,
            "cut at {cut}: torn tail accounting"
        );
        assert_eq!(
            store_digest(&store),
            digests[replayed],
            "cut at {cut}: recovered store diverges from the {replayed}-record oracle"
        );
    }
}

/// Recovery from the intact log rebuilds a store whose Q1–Q4 results are
/// identical to the pre-crash store's.
#[test]
fn full_log_recovery_is_query_identical() {
    let dir = ScratchDir::new("full-recovery").expect("scratch dir");
    let (final_store, script) = build_log(dir.path());
    let (recovered, report) = recover(dir.path()).expect("recovery succeeds");
    assert_eq!(report.replayed_records as usize, script.len());
    assert_eq!(report.torn_tail_bytes, 0);
    assert!(report.stopped.is_none());
    assert_eq!(store_digest(&recovered), store_digest(&final_store));
    assert_eq!(query_rows(recovered), query_rows(final_store));
}

/// Seeded single-bit flips anywhere in the frame stream: the reader must
/// stop at the corrupted frame — replaying exactly the intact prefix and
/// reporting the damage — and must never replay a corrupt record.
#[test]
fn bit_flips_stop_replay_at_the_intact_prefix() {
    let seed = crash_seed();
    let dir = ScratchDir::new("bit-flips").expect("scratch dir");
    let (_, script) = build_log(dir.path());
    let wal_bytes = std::fs::read(dir.path().join(WAL_FILE)).expect("read log");
    let boundaries = frame_boundaries(&wal_bytes, WAL_HEADER);
    let digests = oracle_digests(dir.path(), &script);

    let mut state = seed ^ 0xF11B;
    let span = wal_bytes.len() - WAL_HEADER;
    for _ in 0..200 {
        let at = WAL_HEADER + (splitmix(&mut state) as usize) % span;
        let bit = (splitmix(&mut state) % 8) as u8;
        let mut image = wal_bytes.clone();
        image[at] ^= 1 << bit;

        let crash = stage_crash(dir.path(), &image, "flip");
        let (store, report) = recover(crash.path())
            .unwrap_or_else(|e| panic!("flip at {at}.{bit}: recovery failed: {e}"));
        // Frames wholly before the flip are untouched; the frame holding
        // the flip fails its CRC (or reads as torn), so replay stops
        // exactly at the intact prefix.
        let intact = boundaries.iter().take_while(|&&b| b <= at).count();
        assert_eq!(
            report.replayed_records as usize, intact,
            "flip at {at}.{bit}: replay must stop at the intact prefix"
        );
        assert!(
            report.stopped.is_some() || report.torn_tail_bytes > 0,
            "flip at {at}.{bit}: damage went unreported"
        );
        assert_eq!(
            store_digest(&store),
            digests[intact],
            "flip at {at}.{bit}: recovered store diverges from the oracle"
        );
    }
}

/// A torn append (injected at every opportunity) poisons the handle after
/// persisting only a byte prefix; recovery discards the tear and lands on
/// the acknowledged records.
#[test]
fn torn_write_recovers_to_acknowledged_prefix() {
    let seed = crash_seed();
    let dir = ScratchDir::new("torn-write").expect("scratch dir");
    let mut store = fresh_store();
    let injector = WriteFaultInjector::new(WriteFaultConfig {
        torn_write_rate: 1.0,
        seed,
        ..Default::default()
    });
    injector.set_enabled(false);
    let mut session = WalSession::create(
        dir.path(),
        &store,
        FlushPolicy::EveryRecord,
        Some(injector.clone()),
    )
    .expect("session creates");
    injector.set_enabled(true);

    let base_digest = store_digest(&store);
    let err = session
        .append(&WalRecord::StatsRefresh { buckets: 12 })
        .expect_err("every append tears");
    assert!(err.to_string().contains("torn"), "unexpected fault: {err}");
    assert!(session.poisoned(), "fault must poison the handle");
    assert_eq!(injector.stats().torn_writes, 1);
    // The live path would now run in degraded (unacknowledged) mode; the
    // on-disk state must still recover to the pre-append store.
    apply_to(&mut store, &WalRecord::StatsRefresh { buckets: 12 }).expect("in-memory apply");

    let (recovered, report) = recover(dir.path()).expect("recovery succeeds");
    assert_eq!(report.replayed_records, 0);
    assert!(
        report.stopped.is_none(),
        "a torn tail is benign, not corruption"
    );
    assert_eq!(store_digest(&recovered), base_digest);
    assert_ne!(
        store_digest(&recovered),
        store_digest(&store),
        "the unacknowledged mutation must not survive the crash"
    );
}

/// A failed sync persists the frame but reports failure: the record is
/// durable-but-unacknowledged, and recovery replays it.
#[test]
fn sync_failure_is_durable_but_unacknowledged() {
    let seed = crash_seed();
    let dir = ScratchDir::new("sync-fail").expect("scratch dir");
    let store = fresh_store();
    let injector = WriteFaultInjector::new(WriteFaultConfig {
        sync_failure_rate: 1.0,
        seed,
        ..Default::default()
    });
    injector.set_enabled(false);
    let mut session = WalSession::create(
        dir.path(),
        &store,
        FlushPolicy::EveryRecord,
        Some(injector.clone()),
    )
    .expect("session creates");
    injector.set_enabled(true);

    session
        .append(&WalRecord::StatsRefresh { buckets: 12 })
        .expect_err("sync fails");
    assert!(session.poisoned());
    assert_eq!(injector.stats().sync_failures, 1);

    let mut oracle = fresh_store();
    apply_to(&mut oracle, &WalRecord::StatsRefresh { buckets: 12 }).expect("oracle apply");
    let (recovered, report) = recover(dir.path()).expect("recovery succeeds");
    assert_eq!(
        report.replayed_records, 1,
        "the synced-but-unacknowledged record is on disk and replays"
    );
    assert_eq!(store_digest(&recovered), store_digest(&oracle));
}

/// A partial flush under batching persists a whole-frame prefix of the
/// buffered batch; recovery replays exactly that prefix.
#[test]
fn partial_flush_keeps_a_whole_frame_prefix() {
    let seed = crash_seed();
    let dir = ScratchDir::new("partial-flush").expect("scratch dir");
    let store = fresh_store();
    let injector = WriteFaultInjector::new(WriteFaultConfig {
        partial_flush_rate: 1.0,
        seed,
        ..Default::default()
    });
    injector.set_enabled(false);
    let mut session = WalSession::create(
        dir.path(),
        &store,
        FlushPolicy::Manual,
        Some(injector.clone()),
    )
    .expect("session creates");
    injector.set_enabled(true);

    let script = [
        WalRecord::StatsRefresh { buckets: 8 },
        WalRecord::StatsRefresh { buckets: 16 },
        WalRecord::BuildIndexes { bump_epoch: true },
        WalRecord::StatsRefresh { buckets: 24 },
    ];
    for rec in &script {
        session.append(rec).expect("manual policy buffers appends");
    }
    assert_eq!(session.buffered_records(), script.len());
    session.flush().expect_err("flush is partial");
    assert!(session.poisoned());
    assert_eq!(injector.stats().partial_flushes, 1);

    let (recovered, report) = recover(dir.path()).expect("recovery succeeds");
    let kept = report.replayed_records as usize;
    assert!(kept < script.len(), "a partial flush keeps a strict prefix");
    assert!(
        report.stopped.is_none(),
        "whole-frame prefixes carry no corruption"
    );
    let mut oracle = fresh_store();
    for rec in &script[..kept] {
        apply_to(&mut oracle, rec).expect("oracle apply");
    }
    assert_eq!(store_digest(&recovered), store_digest(&oracle));
}

/// End-to-end through the service: durable mutations survive a crash and
/// `QueryService::recover` answers Q1–Q4 identically to the pre-crash
/// service, with the recovery counters reporting the replay.
#[test]
fn service_crash_roundtrip_is_query_identical() {
    let dir = ScratchDir::new("service-roundtrip").expect("scratch dir");
    let svc = QueryService::new(
        fresh_store(),
        CostParams::default(),
        OptimizerConfig::all_rules(),
        64,
        4,
    );
    svc.enable_durability(dir.path(), FlushPolicy::EveryRecord)
        .expect("durability on");
    svc.refresh_statistics(16);
    svc.refresh_statistics(40);
    let before: Vec<Vec<String>> = QUERIES
        .iter()
        .map(|q| {
            let mut rows = svc.submit(q).expect("pre-crash query").rows;
            rows.sort();
            rows
        })
        .collect();
    let stats = svc.durability_stats().expect("durability stats");
    assert_eq!(stats.records, 2);
    assert!(!stats.poisoned);
    drop(svc); // crash: the service vanishes, the directory remains

    let (svc, report) = QueryService::recover(
        dir.path(),
        CostParams::default(),
        OptimizerConfig::all_rules(),
        64,
        4,
        FlushPolicy::EveryRecord,
    )
    .expect("recovery succeeds");
    assert_eq!(report.replayed_records, 2);
    assert!(report.stopped.is_none());
    let after: Vec<Vec<String>> = QUERIES
        .iter()
        .map(|q| {
            let mut rows = svc.submit(q).expect("post-crash query").rows;
            rows.sort();
            rows
        })
        .collect();
    assert_eq!(before, after, "recovery must not change any query answer");
    let text = svc.metrics_prometheus();
    assert!(
        text.contains("oodb_recovery_replayed_total 2"),
        "recovery counter missing:\n{text}"
    );
}
