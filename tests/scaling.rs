//! Concurrency proof for the epoch-snapshot service state.
//!
//! N submitter threads optimize + execute a mix of queries while a
//! mutator thread repeatedly swaps statistics *and* configuration in a
//! single combined snapshot ([`QueryService::refresh_statistics_with_config`]).
//! The invariants:
//!
//! * **No torn reads.** Every [`QueryOutput`] reports the
//!   `(stats_epoch, config_fingerprint)` pair its submission planned
//!   under; that pair must be one the mutator actually *published* —
//!   never a cross of one swap's epoch with another swap's config.
//! * **Cache accounting reconciles.** Each submission performs exactly
//!   one plan-cache probe, so hits + misses across the race must equal
//!   the number of submissions, and the hit counter must equal the
//!   number of outputs that claim `cache_hit`.
//!
//! This file also runs under the thread-sanitizer CI job, where the
//! snapshot cell's unsynchronized fast path would light up if the
//! version/Arc pairing were ever inconsistent.

use oodb_core::config::rule_names;
use oodb_core::{CostParams, OptimizerConfig};
use oodb_service::{QueryService, SubmitOptions, WorkerPool};
use oodb_storage::{generate_paper_db, GenConfig};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

fn service() -> QueryService {
    let (store, _model) = generate_paper_db(GenConfig {
        scale_div: 100,
        ..Default::default()
    });
    QueryService::new(
        store,
        CostParams::default(),
        OptimizerConfig::all_rules(),
        128,
        8,
    )
}

const QUERIES: &[&str] = &[
    r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#,
    "SELECT t FROM Task t IN Tasks WHERE t.time() == 100",
    r#"SELECT Newobject(c.mayor().age(), c.name()) FROM City c IN Cities
       WHERE c.mayor().name() == "Joe""#,
    "SELECT t FROM Task t IN Tasks WHERE t.time() <= 40",
];

/// The two configurations the mutator alternates between. Their
/// fingerprints differ, so a torn read (new epoch, old config) would
/// produce a pair the mutator never published.
fn configs() -> [OptimizerConfig; 2] {
    [
        OptimizerConfig::all_rules(),
        OptimizerConfig::all_rules().and_without(rule_names::COLLAPSE_TO_INDEX_SCAN),
    ]
}

#[test]
fn concurrent_submissions_never_observe_torn_snapshots() {
    const SUBMITTERS: usize = 4;
    const SUBMISSIONS_EACH: usize = 40;
    const SWAPS: usize = 12;

    let svc = service();
    let cache_before = svc.cache().stats();

    // Every snapshot identity that ever existed: the initial one plus
    // one per combined swap. Only the mutator thread mutates, so the
    // identity it reads right after each swap is exactly what it
    // published.
    let published: Mutex<HashSet<(u64, u64)>> = Mutex::new(HashSet::new());
    published.lock().unwrap().insert(svc.snapshot_identity());

    let done = AtomicBool::new(false);
    let outputs: Mutex<Vec<(u64, u64, bool)>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        let svc_ref = &svc;
        let published_ref = &published;
        let outputs_ref = &outputs;
        let done_ref = &done;
        let mutator = s.spawn(move || {
            let cfgs = configs();
            for i in 0..SWAPS {
                svc_ref.refresh_statistics_with_config(8, cfgs[i % cfgs.len()].clone());
                published_ref
                    .lock()
                    .unwrap()
                    .insert(svc_ref.snapshot_identity());
                std::thread::sleep(Duration::from_millis(2));
            }
            done_ref.store(true, Ordering::Release);
        });
        for w in 0..SUBMITTERS {
            s.spawn(move || {
                let mut local = Vec::with_capacity(SUBMISSIONS_EACH);
                let mut i = 0;
                // Keep submitting at least SUBMISSIONS_EACH times and
                // until the mutator finishes, so swaps always race live
                // submissions.
                while i < SUBMISSIONS_EACH || !done_ref.load(Ordering::Acquire) {
                    let q = QUERIES[(w + i) % QUERIES.len()];
                    let out = svc_ref.submit(q).expect("submission failed");
                    local.push((out.stats_epoch, out.config_fp, out.cache_hit));
                    i += 1;
                }
                outputs_ref.lock().unwrap().extend(local);
            });
        }
        mutator.join().unwrap();
    });

    let published = published.lock().unwrap();
    assert_eq!(
        published.len(),
        SWAPS + 1,
        "every swap must install a distinct (epoch, config) identity"
    );
    let outputs = outputs.lock().unwrap();
    assert!(outputs.len() >= SUBMITTERS * SUBMISSIONS_EACH);
    for &(epoch, fp, _) in outputs.iter() {
        assert!(
            published.contains(&(epoch, fp)),
            "torn snapshot: observed ({epoch}, {fp:#x}), published {published:?}"
        );
    }

    // Cache accounting: one probe per submission, hits consistent with
    // what the outputs themselves claim.
    let cache_after = svc.cache().stats();
    let hits = cache_after.hits - cache_before.hits;
    let misses = cache_after.misses - cache_before.misses;
    assert_eq!(
        (hits + misses) as usize,
        outputs.len(),
        "every submission probes the cache exactly once"
    );
    let claimed_hits = outputs.iter().filter(|(_, _, hit)| *hit).count();
    assert_eq!(hits as usize, claimed_hits, "hit counter must reconcile");
}

/// The per-worker pool channels must deliver every queued job while the
/// snapshot state churns underneath — no job lost to round-robin slot
/// selection, no worker wedged on a stale receiver.
#[test]
fn worker_pool_drains_under_snapshot_churn() {
    const JOBS: usize = 48;

    let svc = service();
    let pool = WorkerPool::new(svc.clone(), 3);
    let cfgs = configs();
    let pending: Vec<_> = (0..JOBS)
        .map(|i| {
            if i % 8 == 7 {
                svc.refresh_statistics_with_config(8, cfgs[(i / 8) % cfgs.len()].clone());
            }
            pool.submit(QUERIES[i % QUERIES.len()], SubmitOptions::default())
        })
        .collect();
    let mut served = 0;
    for p in pending {
        p.wait().expect("pool job failed");
        served += 1;
    }
    assert_eq!(served, JOBS);
    pool.shutdown();
}
