//! The rule-soundness harness: every transformation rule, applied to the
//! expressions exploration actually generates over a corpus of seed
//! queries, must produce rewrites that
//!
//! 1. still pass the static linter ([`oodb_core::verify`]),
//! 2. bind exactly the same output variables as the original, and
//! 3. are denotationally equal — optimizing and executing the original
//!    and the rewrite on a small seeded store yields the same result set.
//!
//! This is the machine check behind the paper's extensibility claim: a
//! rule added to the generated optimizer is independently auditable for
//! soundness, not just for whether its plans happen to win.

use oodb_algebra::{LogicalPlan, QueryEnv, SetOpKind, VarSet};
use oodb_bench::queries;
use oodb_core::optimizer::{extract_anchored, seed};
use oodb_core::rules::rule_set;
use oodb_core::verify;
use oodb_core::{CostParams, OodbModel, OpenOodb, OptimizerConfig};
use oodb_exec::{execute, ExecResult};
use oodb_object::paper::PaperModel;
use oodb_object::Value;
use oodb_storage::{generate_paper_db, GenConfig, Store};
use std::collections::{BTreeMap, HashSet};
use std::sync::OnceLock;
use volcano::{Memo, Optimizer, Rewrite, SearchConfig};

fn db() -> &'static (Store, PaperModel) {
    static DB: OnceLock<(Store, PaperModel)> = OnceLock::new();
    DB.get_or_init(|| {
        generate_paper_db(GenConfig {
            scale_div: 100,
            ..Default::default()
        })
    })
}

/// Per-rule cap on (seed, expression) samples — rules like join
/// commutativity apply everywhere; a handful of distinct sites each is
/// plenty to falsify an unsound rewrite.
const SAMPLES_PER_RULE_PER_SEED: usize = 4;

/// A set-operation composite no paper query exercises: Mat over Select
/// over Union of two selections of the same scan — the shapes the
/// `select-setop-push` and `mat-setop-push` rules rewrite.
fn setop_seed(m: &PaperModel) -> queries::PaperQuery {
    use oodb_algebra::QueryBuilder;
    let ids = &m.ids;
    let mut qb = QueryBuilder::new(m.schema.clone(), m.catalog.clone());
    let (cities, c) = qb.get(ids.cities, "c");
    let p_small = qb.cmp_const(
        c,
        ids.city_population,
        oodb_algebra::CmpOp::Lt,
        Value::Int(200_000),
    );
    let p_big = qb.cmp_const(
        c,
        ids.city_population,
        oodb_algebra::CmpOp::Ge,
        Value::Int(5_000_000),
    );
    let left = qb.select(cities.clone(), p_small);
    let right = qb.select(cities, p_big);
    let union = qb.set_op(SetOpKind::Union, left, right);
    let p_name = qb.cmp_const(
        c,
        ids.city_name,
        oodb_algebra::CmpOp::Ne,
        Value::str("Nowhere"),
    );
    let sel = qb.select(union, p_name);
    let (plan, cm) = qb.mat(sel, c, ids.city_mayor, "cm");
    let vars = vec![("c".to_string(), c), ("cm".to_string(), cm)];
    queries::PaperQuery {
        env: qb.into_env(),
        plan,
        result_vars: VarSet::single(c),
        vars,
    }
}

/// Converts a rewrite template back into a logical tree, resolving
/// untouched groups through their anchor expression.
fn rewrite_to_plan(
    memo: &Memo<OodbModel<'_>>,
    rw: &Rewrite<oodb_algebra::LogicalOp>,
) -> LogicalPlan {
    match rw {
        Rewrite::Op(op, subs) => LogicalPlan {
            op: op.clone(),
            children: subs.iter().map(|s| rewrite_to_plan(memo, s)).collect(),
        },
        Rewrite::Group(g) => {
            let anchor = memo.group_exprs(*g)[0];
            extract_anchored(memo, anchor)
        }
    }
}

/// Canonical, order-insensitive rendering of an execution result over the
/// given output variables.
fn canonical_rows(env: &QueryEnv, vars: VarSet, result: &ExecResult) -> Vec<String> {
    let mut rows: Vec<String> = match result {
        ExecResult::Rows(rows) => rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect::<Vec<_>>().join("|"))
            .collect(),
        ExecResult::Tuples(_) => result
            .tuples()
            .iter()
            .map(|t| {
                vars.iter()
                    .map(|v| match t.try_get(v) {
                        Some(oid) => format!("{}={oid:?}", env.scopes.var(v).name),
                        None => format!("{}=∅", env.scopes.var(v).name),
                    })
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect(),
    };
    rows.sort();
    rows
}

/// Optimizes and executes a logical tree, returning its canonical result.
fn run_tree(store: &Store, env: &QueryEnv, tree: &LogicalPlan, vars: VarSet) -> Vec<String> {
    let out = OpenOodb::with_config(env, OptimizerConfig::all_rules())
        .optimize(tree, vars)
        .expect("rewritten tree must be implementable");
    assert!(
        out.diagnostics.is_empty(),
        "winning plan of a harness tree failed verification: {:?}",
        out.diagnostics
    );
    let (result, _) = execute(store, env, &out.plan);
    canonical_rows(env, vars, &result)
}

#[test]
fn every_transformation_rule_is_sound_on_the_corpus() {
    let (store, m) = db();
    let seeds: Vec<(&str, queries::PaperQuery)> = vec![
        ("query1", queries::query1(m)),
        ("query2", queries::query2(m)),
        ("query4", queries::query4(m)),
        ("fig2", queries::fig2_query(m)),
        ("setop", setop_seed(m)),
    ];
    let config = OptimizerConfig::all_rules();
    let rules = rule_set(&config);
    let mut samples_by_rule: BTreeMap<&'static str, usize> = BTreeMap::new();
    for t in &rules.transforms {
        samples_by_rule.insert(t.name(), 0);
    }

    for (seed_name, q) in &seeds {
        let model = OodbModel::new(&q.env, CostParams::default(), config.clone());
        let mut opt = Optimizer::new(&model, &rules, SearchConfig::default());
        let root = seed(&mut opt.memo, &model, &q.plan);
        opt.explore_all();
        let _ = root;
        let memo = &opt.memo;
        // Cache each original expression's result so rules sharing a site
        // don't re-execute it.
        let mut original_results: BTreeMap<usize, (VarSet, Vec<String>)> = BTreeMap::new();
        let mut seen_rewrites: HashSet<String> = HashSet::new();

        for e in memo.live_exprs() {
            let expr = memo.expr(e);
            let original = extract_anchored(memo, e);
            for rule in &rules.transforms {
                if samples_by_rule[rule.name()] >= SAMPLES_PER_RULE_PER_SEED * seeds.len() {
                    continue;
                }
                for rw in rule.apply(&model, memo, expr) {
                    let rewritten = rewrite_to_plan(memo, &rw);
                    if rewritten == original {
                        continue;
                    }
                    let sig = format!("{}:{rewritten:?}", rule.name());
                    if !seen_rewrites.insert(sig) {
                        continue;
                    }

                    // (1) the rewrite is still well-formed;
                    let diags = verify::lint_logical(&q.env, &rewritten);
                    assert!(
                        diags.is_empty(),
                        "[{seed_name}] rule {} produced an ill-formed rewrite:\n\
                         original: {original:?}\nrewritten: {rewritten:?}\n{diags:?}",
                        rule.name()
                    );

                    // (2) it binds the same output variables;
                    let vars = verify::logical_vars(&q.env, &original);
                    let rw_vars = verify::logical_vars(&q.env, &rewritten);
                    assert_eq!(
                        vars,
                        rw_vars,
                        "[{seed_name}] rule {} changed the bound variables",
                        rule.name()
                    );

                    // (3) and it denotes the same result set.
                    let expected = original_results
                        .entry(e.index())
                        .or_insert_with(|| (vars, run_tree(store, &q.env, &original, vars)));
                    let expected = expected.1.clone();
                    let got = run_tree(store, &q.env, &rewritten, vars);
                    assert_eq!(
                        got,
                        expected,
                        "[{seed_name}] rule {} is not denotationally sound",
                        rule.name()
                    );
                    *samples_by_rule.get_mut(rule.name()).unwrap() += 1;
                }
            }
        }
    }

    // Coverage: the corpus must exercise every registered transformation
    // rule at least once — a rule nothing fires on is untested, not sound.
    let unexercised: Vec<&str> = samples_by_rule
        .iter()
        .filter(|(_, &n)| n == 0)
        .map(|(&name, _)| name)
        .collect();
    assert!(
        unexercised.is_empty(),
        "transformation rules never exercised by the corpus: {unexercised:?}\n\
         samples: {samples_by_rule:?}"
    );
}
