//! End-to-end proofs for the `oodb-server` serving front end: a real
//! listener on loopback, real sockets, concurrent clients.
//!
//! The load-bearing assertions:
//! * **Counter reconciliation** — after a concurrent pipelined
//!   prepared-statement storm, the server's own request counters, the
//!   executed-outcome counters, the plan cache's hits+misses, and the
//!   per-tenant admission counts all describe the same story.
//! * **Protocol hygiene** — malformed framing, invalid JSON, and
//!   oversized bodies are rejected with the right statuses and never
//!   wedge the connection.
//! * **Graceful shutdown** — a request in flight when shutdown begins
//!   still gets its response.
//! * **Back-pressure contract** — `Overloaded` surfaces as 429/503
//!   with a `Retry-After` header and a typed, decodable error body.

use open_oodb::prelude::*;
use open_oodb::server::{Client, ClientError, Server, ServerConfig};
use open_oodb::service::{AdmissionConfig, QueryService, ServiceError, ShedReason};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

fn service() -> QueryService {
    let (store, _model) = generate_paper_db(GenConfig {
        scale_div: 100,
        ..Default::default()
    });
    QueryService::new(
        store,
        CostParams::default(),
        OptimizerConfig::all_rules(),
        256,
        8,
    )
}

fn start(config: ServerConfig) -> Server {
    Server::start(service(), "127.0.0.1:0", config).expect("bind loopback")
}

const QUERIES: [&str; 4] = [
    "SELECT Newobject(e.name(), e.job().name(), e.dept().name()) \
     FROM Employee e IN Employees \
     WHERE e.dept().plant().location() == \"Dallas\"",
    "SELECT c FROM City c IN Cities WHERE c.mayor().name() == \"Joe\"",
    "SELECT Newobject(c.mayor().age(), c.name()) \
     FROM City c IN Cities WHERE c.mayor().name() == \"Joe\"",
    "SELECT t FROM Task t IN Tasks WHERE t.time() == 100 \
     && EXISTS (SELECT m FROM m IN t.team_members() WHERE m.name() == \"Fred\")",
];

#[test]
fn smoke_every_endpoint() {
    let server = start(ServerConfig::default());
    let addr = server.local_addr();
    let expect = server.service().submit(QUERIES[1]).unwrap();

    let mut c = Client::connect(addr).unwrap();
    c.healthz().unwrap();

    // Ad-hoc query returns the same rows as an in-process submit.
    let remote = c.query(QUERIES[1], Default::default()).unwrap();
    assert_eq!(remote.rows, expect.rows);
    assert!(remote.cache_hit, "in-process warmed the cache");
    assert!(remote.stages.parse_ns > 0, "ad-hoc queries parse");

    // Prepare is idempotent; execute skips the front end entirely.
    let (id, created) = c.prepare(QUERIES[1]).unwrap();
    assert!(created);
    let (id2, created2) = c.prepare(QUERIES[1]).unwrap();
    assert_eq!((id, false), (id2, created2));
    let out = c.execute(id, Default::default()).unwrap();
    assert_eq!(out.rows, expect.rows);
    assert!(out.cache_hit);
    assert_eq!(out.stages.parse_ns, 0, "prepared executions never parse");

    // Metrics exposition carries build info and the server counters.
    let metrics = c.metrics().unwrap();
    assert!(metrics.contains("oodb_build_info{"), "{metrics}");
    assert!(metrics.contains("oodb_server_requests_total"), "{metrics}");
    assert!(metrics.contains("oodb_prepared_statements 1"), "{metrics}");

    // Stats document is well-formed JSON with the expected shape.
    let stats = c.stats().unwrap();
    assert_eq!(
        stats
            .get("requests")
            .unwrap()
            .get("query")
            .unwrap()
            .as_u64(),
        Some(1)
    );
    assert_eq!(stats.get("prepared_statements").unwrap().as_u64(), Some(1));

    // The feedback section reflects the drift detector: these queries run
    // against honest statistics, so they are tracked but never suspect.
    let fb = stats.get("feedback").unwrap();
    assert!(
        fb.get("tracked").unwrap().as_u64().unwrap() >= 1,
        "{stats:?}"
    );
    assert_eq!(fb.get("suspect").unwrap().as_u64(), Some(0));

    // Durability is off by default, and /stats says so explicitly.
    let dur = stats.get("durability").unwrap();
    assert_eq!(dur.get("enabled").unwrap().as_bool(), Some(false));

    // Unknown path and wrong method.
    assert_eq!(c.request("GET", "/nope", None).unwrap().status, 404);
    assert_eq!(c.request("PUT", "/query", None).unwrap().status, 405);

    drop(c);
    server.shutdown();
}

#[test]
fn concurrent_pipelined_replay_reconciles_every_counter() {
    const CLIENTS: usize = 4;
    const BATCHES: usize = 4;
    const BATCH: usize = 16;
    let server = start(ServerConfig {
        pool_workers: 4,
        ..Default::default()
    });
    let addr = server.local_addr();

    // Register and warm each statement once, so the storm below runs
    // against a deterministic cache state (exactly one miss per shape).
    let mut warm = Client::connect(addr).unwrap();
    let ids: Vec<u64> = QUERIES
        .iter()
        .map(|q| {
            let (id, created) = warm.prepare(q).unwrap();
            assert!(created);
            warm.execute(id, Default::default()).unwrap();
            id
        })
        .collect();
    drop(warm);

    let workers: Vec<_> = (0..CLIENTS)
        .map(|n| {
            let ids = ids.clone();
            thread::spawn(move || {
                let tenant = format!("tenant-{n}");
                let mut c = Client::connect(addr).unwrap();
                let opts = open_oodb::server::RequestOptions {
                    tenant: Some(&tenant),
                    ..Default::default()
                };
                let mut ok = 0usize;
                for batch in 0..BATCHES {
                    // Skewed replay: every batch leads with the hot
                    // statement, like the Zipf benches.
                    let batch_ids: Vec<u64> =
                        (0..BATCH).map(|i| ids[(i + batch) % ids.len()]).collect();
                    for r in c.pipeline_execute(&batch_ids, opts).unwrap() {
                        let out = r.expect("pipelined execute");
                        assert!(out.cache_hit, "warm replay must hit");
                        ok += 1;
                    }
                }
                ok
            })
        })
        .collect();
    let executed: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(executed, CLIENTS * BATCHES * BATCH);

    // Reconcile: server counters vs cache vs tenant admission.
    let mut c = Client::connect(addr).unwrap();
    let stats = c.stats().unwrap();
    let field = |path: &[&str]| {
        let mut v = &stats;
        for p in path {
            v = v
                .get(p)
                .unwrap_or_else(|| panic!("missing {p} in {stats:?}"));
        }
        v.as_u64().unwrap()
    };
    let total_execs = (executed + QUERIES.len()) as u64; // storm + warmup
    assert_eq!(field(&["requests", "execute"]), total_execs);
    assert_eq!(field(&["requests", "prepare"]), QUERIES.len() as u64);
    assert_eq!(field(&["executed", "ok"]), total_execs);
    assert_eq!(field(&["executed", "error"]), 0);
    // Every execution probed the cache exactly once; only the warmup
    // runs missed.
    assert_eq!(
        field(&["cache", "hits"]) + field(&["cache", "misses"]),
        total_execs
    );
    assert_eq!(field(&["cache", "misses"]), QUERIES.len() as u64);
    // Per-tenant admission accounts for exactly the storm requests,
    // with nothing shed.
    let tenants = stats.get("tenants").unwrap().as_arr().unwrap();
    let mut admitted = 0;
    for t in tenants {
        admitted += t.get("admitted").unwrap().as_u64().unwrap();
        assert_eq!(t.get("shed_queue_full").unwrap().as_u64(), Some(0));
        assert_eq!(t.get("shed_circuit_open").unwrap().as_u64(), Some(0));
        assert_eq!(t.get("inflight").unwrap().as_u64(), Some(0));
    }
    assert_eq!(admitted, total_execs);
    drop(c);
    server.shutdown();
}

#[test]
fn malformed_and_oversized_requests_are_rejected() {
    let server = start(ServerConfig {
        max_body_bytes: 512,
        ..Default::default()
    });
    let addr = server.local_addr();

    // Raw garbage instead of a request line → 400, connection closed.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
    let mut buf = String::new();
    raw.read_to_string(&mut buf).unwrap(); // EOF proves the close
    assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    assert!(buf.contains("bad_request"), "{buf}");

    // Declared body over the cap → 413 without reading the body.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"POST /query HTTP/1.1\r\ncontent-length: 99999\r\n\r\n")
        .unwrap();
    let mut buf = String::new();
    raw.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 413"), "{buf}");

    let mut c = Client::connect(addr).unwrap();
    // Invalid JSON body → 400, and the connection stays usable.
    let resp = c.request("POST", "/query", Some("{not json")).unwrap();
    assert_eq!(resp.status, 400);
    // Missing required field → 400.
    let resp = c
        .request("POST", "/query", Some("{\"q\":\"oops\"}"))
        .unwrap();
    assert_eq!(resp.status, 400);
    // Bad statement-id syntax → 400; unknown id → typed 404.
    let resp = c.request("POST", "/execute/xyz", Some("{}")).unwrap();
    assert_eq!(resp.status, 400);
    match c.execute(0xdeadbeefdeadbeef, Default::default()) {
        Err(ClientError::Service {
            status: 404, error, ..
        }) => {
            assert_eq!(
                error,
                ServiceError::UnknownStatement {
                    id: 0xdeadbeefdeadbeef
                }
            );
        }
        other => panic!("expected typed 404, got {other:?}"),
    }
    // A ZQL error is a typed 400 the client can decode.
    match c.query("SELECT FROM WHERE", Default::default()) {
        Err(ClientError::Service {
            status: 400,
            error: ServiceError::Zql(_),
            ..
        }) => {}
        other => panic!("expected typed zql 400, got {other:?}"),
    }
    // ...and the connection still works afterwards.
    c.healthz().unwrap();
    drop(c);
    server.shutdown();
}

#[test]
fn idle_closed_keepalive_is_replayed_transparently() {
    // Aggressive idle timeout: the server closes the connection long
    // before the client's second statement.
    let server = start(ServerConfig {
        io_timeout: Duration::from_millis(150),
        ..Default::default()
    });
    let addr = server.local_addr();

    let mut c = Client::connect(addr).unwrap();
    let first = c.query(QUERIES[1], Default::default()).unwrap();
    // Outlive the server's idle timeout, then reuse the same Client:
    // the stale keep-alive connection must be replayed on a fresh one
    // without surfacing a transport error (an interactive shell pauses
    // between statements far longer than any sane io_timeout).
    thread::sleep(Duration::from_millis(400));
    let second = c.query(QUERIES[1], Default::default()).unwrap();
    assert_eq!(second.rows, first.rows);
    assert!(second.cache_hit, "replayed statement still hits the cache");
    // Prepared executions ride the same replay path.
    let (id, _) = c.prepare(QUERIES[1]).unwrap();
    thread::sleep(Duration::from_millis(400));
    let out = c.execute(id, Default::default()).unwrap();
    assert_eq!(out.rows, first.rows);
    drop(c);
    server.shutdown();
}

/// Picks a realize-I/O scale that stretches `query`'s execution to
/// roughly `target` of wall-clock on this machine.
fn io_scale_for(svc: &QueryService, query: &str, target: Duration) -> f64 {
    let out = svc.submit(query).unwrap();
    target.as_secs_f64() / out.sim_io_s.max(1e-6)
}

#[test]
fn graceful_shutdown_answers_inflight_requests() {
    let server = start(ServerConfig {
        io_timeout: Duration::from_millis(500),
        ..Default::default()
    });
    let addr = server.local_addr();
    let scale = io_scale_for(server.service(), QUERIES[0], Duration::from_millis(400));
    let expect_rows = server.service().submit(QUERIES[0]).unwrap().rows;

    let worker = thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.query(
            QUERIES[0],
            open_oodb::server::RequestOptions {
                realize_io_scale: Some(scale),
                ..Default::default()
            },
        )
    });
    // Let the slow request get admitted, then begin shutdown while it
    // is still executing.
    thread::sleep(Duration::from_millis(120));
    server.shutdown();
    // Shutdown has fully returned — yet the in-flight request got its
    // answer, proving the drain.
    let out = worker
        .join()
        .unwrap()
        .expect("in-flight request must be answered");
    assert_eq!(out.rows, expect_rows);
    // And the listener is really gone: a fresh exchange fails.
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.healthz().is_err(),
    };
    assert!(refused, "server still serving after shutdown");
}

#[test]
fn per_tenant_inflight_cap_maps_to_429_with_retry_after() {
    let server = start(ServerConfig {
        io_timeout: Duration::from_secs(5),
        tenant_admission: AdmissionConfig {
            max_inflight: 1,
            ..Default::default()
        },
        ..Default::default()
    });
    let addr = server.local_addr();
    let scale = io_scale_for(server.service(), QUERIES[0], Duration::from_millis(600));

    let slow = thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.query(
            QUERIES[0],
            open_oodb::server::RequestOptions {
                tenant: Some("acme"),
                realize_io_scale: Some(scale),
                ..Default::default()
            },
        )
    });
    thread::sleep(Duration::from_millis(150));
    // Same tenant: the cap sheds with the full back-pressure contract.
    let mut c = Client::connect(addr).unwrap();
    match c.query(
        QUERIES[1],
        open_oodb::server::RequestOptions {
            tenant: Some("acme"),
            ..Default::default()
        },
    ) {
        Err(ClientError::Service {
            status,
            error,
            retry_after_s,
        }) => {
            assert_eq!(status, 429);
            assert_eq!(
                error,
                ServiceError::Overloaded {
                    reason: ShedReason::QueueFull
                }
            );
            assert!(retry_after_s.is_some(), "429 must carry Retry-After");
        }
        other => panic!("expected 429, got {other:?}"),
    }
    // A different tenant sails through while acme is saturated.
    let out = c
        .query(
            QUERIES[1],
            open_oodb::server::RequestOptions {
                tenant: Some("globex"),
                ..Default::default()
            },
        )
        .unwrap();
    assert!(!out.rows.is_empty() || out.row_count == 0);
    slow.join().unwrap().expect("slow request succeeds");
    drop(c);
    server.shutdown();
}

#[test]
fn tenant_breaker_maps_resource_failures_to_503() {
    let server = start(ServerConfig {
        tenant_admission: AdmissionConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(30),
            ..Default::default()
        },
        ..Default::default()
    });
    let addr = server.local_addr();
    // Every storage read faults permanently: the first query fails with
    // a typed 500, which trips the tenant's breaker.
    server
        .service()
        .attach_fault_injector(FaultInjector::new(FaultConfig {
            read_fault_rate: 1.0,
            permanent_ratio: 1.0,
            seed: 7,
            ..Default::default()
        }));

    let mut c = Client::connect(addr).unwrap();
    let opts = open_oodb::server::RequestOptions {
        tenant: Some("flaky"),
        ..Default::default()
    };
    match c.query(QUERIES[1], opts) {
        Err(ClientError::Service {
            status: 500,
            error: ServiceError::StorageFault { .. },
            ..
        }) => {}
        other => panic!("expected typed 500, got {other:?}"),
    }
    // Breaker open: shed before execution, 503 + Retry-After.
    match c.query(QUERIES[1], opts) {
        Err(ClientError::Service {
            status,
            error,
            retry_after_s,
        }) => {
            assert_eq!(status, 503);
            assert_eq!(
                error,
                ServiceError::Overloaded {
                    reason: ShedReason::CircuitOpen
                }
            );
            assert!(
                retry_after_s.unwrap_or(0) >= 1,
                "503 must carry Retry-After"
            );
        }
        other => panic!("expected 503, got {other:?}"),
    }
    // Other tenants are not behind flaky's breaker (they still reach
    // the — failing — storage, which is the point: admission is per
    // tenant, faults are global).
    match c.query(
        QUERIES[1],
        open_oodb::server::RequestOptions {
            tenant: Some("healthy"),
            ..Default::default()
        },
    ) {
        Err(ClientError::Service { status: 500, .. }) => {}
        other => panic!("expected healthy tenant to reach storage, got {other:?}"),
    }
    drop(c);
    server.shutdown();
}
