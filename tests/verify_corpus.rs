//! The verifier over the paper corpus: full optimizer runs on Queries 1–4
//! (and the Figure 2 chain) must produce zero static diagnostics — on the
//! winning plan and, with `verify_search`, on every expression the
//! transformation rules left in the memo.

use oodb_bench::queries;
use oodb_core::{OpenOodb, OptimizerConfig};
use oodb_object::paper::paper_model;

fn assert_clean(name: &str, q: &queries::PaperQuery) {
    let mut config = OptimizerConfig::all_rules();
    config.verify_search = true;
    let out = OpenOodb::with_config(&q.env, config)
        .optimize_ordered(&q.plan, q.result_vars, None)
        .unwrap_or_else(|| panic!("{name}: no feasible plan"));
    assert!(
        out.diagnostics.is_empty(),
        "{name}: verifier diagnostics on a sound run:\n{}",
        out.diagnostics
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn paper_corpus_verifies_clean_with_search_verification() {
    let m = paper_model();
    assert_clean("query1", &queries::query1(&m));
    assert_clean("query2", &queries::query2(&m));
    assert_clean("query3", &queries::query3(&m));
    assert_clean("query4", &queries::query4(&m));
    assert_clean("fig2", &queries::fig2_query(&m));
}

/// The winner-verification hook also runs under ablated configurations —
/// the paper's "W/o Comm." and "W/o Window" plans are shaped differently
/// (pointer chasing, single-object windows) but equally sound.
#[test]
fn ablated_configs_verify_clean() {
    let m = paper_model();
    let q = queries::query1(&m);
    for (name, config) in [
        ("wo-comm", OptimizerConfig::without_join_commutativity()),
        ("wo-window", OptimizerConfig::without_window()),
    ] {
        let out = OpenOodb::with_config(&q.env, config)
            .optimize(&q.plan, q.result_vars)
            .unwrap_or_else(|| panic!("{name}: no feasible plan"));
        assert!(out.diagnostics.is_empty(), "{name}: {:?}", out.diagnostics);
    }
}
