//! Integration proof of the feedback loop: persisted actual-vs-estimated
//! cardinalities, the suspect → probe → re-optimize ladder, and its
//! concurrency and edge-case contracts.
//!
//! The skewed fixture generates the `Employees` set with half its members
//! sharing one name while the catalog's distinct-key statistics still
//! claim a uniform ~1% — the estimate is ~5 rows, the data holds ~250, a
//! ~50× drift that must trip the default 10× threshold. The honest
//! fixture (same scale, no skew) must never trip it.

use oodb_core::{drift_ratio, CostParams, OptimizerConfig, MAX_DRIFT};
use oodb_service::{QueryService, SubmitOptions};
use oodb_storage::{generate_paper_db, GenConfig};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const Q_FRED: &str = r#"SELECT e FROM Employee e IN Employees WHERE e.name() == "Fred""#;

const HONEST_QUERIES: &[&str] = &[
    r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#,
    "SELECT t FROM Task t IN Tasks WHERE t.time() == 100",
    "SELECT t FROM Task t IN Tasks WHERE t.time() <= 40",
];

fn service_with(hot_fraction: f64) -> QueryService {
    let (store, _model) = generate_paper_db(GenConfig {
        scale_div: 100,
        hot_employee_name_fraction: hot_fraction,
        ..Default::default()
    });
    QueryService::new(
        store,
        CostParams::default(),
        OptimizerConfig::all_rules(),
        128,
        8,
    )
}

/// The headline bugfix at the integration level: a plain untraced
/// submission (profiling off, no `EXPLAIN ANALYZE`) must still feed the
/// drift detector and move `oodb_actual_card_violations_total`.
#[test]
fn untraced_production_path_detects_estimate_drift() {
    let svc = service_with(0.5);
    let out = svc.submit(Q_FRED).expect("query failed");
    assert!(out.trace.is_none(), "plain submissions carry no trace");
    assert!(
        out.row_count > 100,
        "the skew fixture must produce a hot key"
    );
    let text = svc.metrics_prometheus();
    assert!(
        text.contains("oodb_actual_card_violations_total 1"),
        "untraced drift must move the violation counter: {text}"
    );
    let fb = svc.feedback_stats();
    assert_eq!(fb.suspect, 1, "the drifting fingerprint is suspect");
    assert!(fb.worst_drift >= 10.0, "drift {:.1}", fb.worst_drift);
}

/// The full ladder converges to a stable corrected cached plan within
/// five executions: detect → evict → probe → re-optimize under the
/// overlay → cache hit, with identical results throughout.
#[test]
fn ladder_converges_to_a_corrected_cached_plan_within_five_executions() {
    let svc = service_with(0.5);
    let reopt = || svc.telemetry().counter("oodb_reopt_total", &[]).get();
    let mut rows = Vec::new();
    let mut converged_at = None;
    for i in 1..=5u32 {
        let out = svc.submit(Q_FRED).expect("query failed");
        rows.push(out.rows.clone());
        if converged_at.is_none() && out.cache_hit && reopt() >= 1 {
            converged_at = Some(i);
        }
    }
    let converged_at = converged_at.expect("ladder never converged in 5 executions");
    assert!(converged_at <= 5);
    assert!(
        rows.windows(2).all(|w| w[0] == w[1]),
        "re-optimization must never change results"
    );
    assert_eq!(reopt(), 1, "exactly one re-optimization");
    let fb = svc.feedback_stats();
    assert_eq!(fb.overridden, 1, "one fingerprint carries overrides");
    // The corrected plan stays stable: further executions are hits and
    // never re-trip the ladder into another re-optimization.
    for _ in 0..3 {
        assert!(svc.submit(Q_FRED).expect("query failed").cache_hit);
    }
    assert_eq!(reopt(), 1);
}

/// Satellite: plan-cache entries produced under a [`StatsOverlay`] must
/// key on the overlay fingerprint. Clearing the feedback store removes
/// the overlay, so the next submission must NOT be served the
/// overlay-corrected plan as a cache hit — a collision here would pin
/// corrected plans past their feedback's lifetime.
#[test]
fn overlay_keyed_cache_entries_never_collide_with_catalog_plans() {
    let svc = service_with(0.5);
    for _ in 0..5 {
        svc.submit(Q_FRED).expect("query failed");
    }
    assert!(
        svc.submit(Q_FRED).expect("query failed").cache_hit,
        "converged plan is cached under the overlay fingerprint"
    );
    svc.feedback().clear();
    let out = svc.submit(Q_FRED).expect("query failed");
    assert!(
        !out.cache_hit,
        "without the overlay, the overlay-keyed entry must not be served"
    );
}

/// Satellite: a statistics refresh retires suspect markers and overrides
/// wholesale — observations of the old data distribution say nothing
/// about the new one.
#[test]
fn stats_refresh_retires_feedback_state() {
    let svc = service_with(0.5);
    for _ in 0..3 {
        svc.submit(Q_FRED).expect("query failed");
    }
    assert!(svc.feedback_stats().tracked >= 1);
    svc.refresh_statistics(8);
    let fb = svc.feedback_stats();
    assert_eq!((fb.tracked, fb.suspect, fb.overridden), (0, 0, 0));
}

proptest! {
    /// Satellite: the drift ratio is total over the full `u64` actual
    /// range and arbitrary `f64` estimates (every bit pattern, including
    /// NaN, infinities, and subnormals) — always finite, always in
    /// `[1, MAX_DRIFT]`, and maximal (not NaN/inf) for the zero-estimate
    /// / observed-rows case that used to divide by zero.
    #[test]
    fn drift_ratio_is_total_and_bounded(est_bits in any::<u64>(), actual in any::<u64>()) {
        let est = f64::from_bits(est_bits);
        let r = drift_ratio(est, actual);
        prop_assert!(r.is_finite(), "drift_ratio({est}, {actual}) = {r}");
        prop_assert!((1.0..=MAX_DRIFT).contains(&r));
        if est <= 0.0 && actual > 0 {
            prop_assert_eq!(r, MAX_DRIFT, "zero estimate vs rows is maximal drift");
        }
        if !est.is_finite() {
            prop_assert_eq!(r, MAX_DRIFT);
        }
    }
}

/// Satellite: feedback recording racing epoch bumps and cache clears.
/// Submitters hammer the skewed query (tripping the ladder over and
/// over) and honest queries; a mutator interleaves statistics refreshes
/// and cache clears. Afterward: no stale suspect markers survive the
/// final refresh, and cache accounting reconciles exactly.
#[test]
fn feedback_survives_racing_epoch_bumps_and_cache_clears() {
    const SUBMITTERS: usize = 4;
    const SUBMISSIONS_EACH: usize = 30;
    const MUTATIONS: usize = 10;

    let svc = service_with(0.5);
    let cache_before = svc.cache().stats();
    let done = AtomicBool::new(false);
    let outputs: Mutex<Vec<bool>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        let svc_ref = &svc;
        let done_ref = &done;
        let outputs_ref = &outputs;
        let mutator = s.spawn(move || {
            for i in 0..MUTATIONS {
                if i % 2 == 0 {
                    svc_ref.refresh_statistics(8);
                } else {
                    svc_ref.cache().clear();
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            done_ref.store(true, Ordering::Release);
        });
        for w in 0..SUBMITTERS {
            s.spawn(move || {
                let mut local = Vec::with_capacity(SUBMISSIONS_EACH);
                let mut i = 0;
                while i < SUBMISSIONS_EACH || !done_ref.load(Ordering::Acquire) {
                    let q = if (w + i) % 2 == 0 {
                        Q_FRED
                    } else {
                        HONEST_QUERIES[(w + i) % HONEST_QUERIES.len()]
                    };
                    let out = svc_ref
                        .submit_with(q, SubmitOptions::default())
                        .expect("submission failed");
                    local.push(out.cache_hit);
                    i += 1;
                }
                outputs_ref.lock().unwrap().extend(local);
            });
        }
        mutator.join().unwrap();
    });

    // One cache probe per submission; claimed hits reconcile with the
    // cache's own counters even across clears and feedback evictions.
    let outputs = outputs.lock().unwrap();
    let cache_after = svc.cache().stats();
    let hits = cache_after.hits - cache_before.hits;
    let misses = cache_after.misses - cache_before.misses;
    assert_eq!(
        (hits + misses) as usize,
        outputs.len(),
        "every submission probes the cache exactly once"
    );
    assert_eq!(
        hits as usize,
        outputs.iter().filter(|&&h| h).count(),
        "hit counter must reconcile"
    );

    // A final refresh retires everything the race left behind: no stale
    // suspect markers or overrides may survive an epoch bump.
    svc.refresh_statistics(8);
    let fb = svc.feedback_stats();
    assert_eq!(
        (fb.tracked, fb.suspect, fb.overridden),
        (0, 0, 0),
        "stale feedback survived the epoch bump: {fb:?}"
    );
    // And the loop still works after the storm: the skewed query trips
    // the ladder again under the new epoch.
    for _ in 0..5 {
        svc.submit(Q_FRED).expect("query failed");
    }
    assert!(svc.feedback_stats().suspect >= 1);
}
