//! End-to-end telemetry invariants: operator traces must reconcile with
//! the executor's statistics, histograms must account for every
//! observation, and the service's counters must balance under concurrency.

use oodb_core::{CostParams, OptimizerConfig};
use oodb_service::{QueryService, SubmitOptions, WorkerPool};
use oodb_storage::{generate_paper_db, GenConfig};
use oodb_telemetry::BUCKET_BOUNDS_NS;

fn service() -> QueryService {
    let (store, _model) = generate_paper_db(GenConfig {
        scale_div: 100,
        ..Default::default()
    });
    QueryService::new(
        store,
        CostParams::default(),
        OptimizerConfig::all_rules(),
        128,
        8,
    )
}

/// The paper's four query shapes (Q1–Q4).
const QUERIES: &[&str] = &[
    // Q1: the Dallas report — path-expression join chain.
    "SELECT Newobject(e.name(), e.job().name(), e.dept().name()) \
     FROM Employee e IN Employees \
     WHERE e.dept().plant().location() == \"Dallas\"",
    // Q2: mayor-name selection (collapses to one path-index scan).
    r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#,
    // Q3: projection needing the mayor in memory (assembly enforcer).
    r#"SELECT Newobject(c.mayor().age(), c.name()) FROM City c IN Cities WHERE c.mayor().name() == "Joe""#,
    // Q4: set-valued path with EXISTS (unnest + mat).
    "SELECT t FROM Task t IN Tasks WHERE t.time() == 100 \
     && EXISTS (SELECT m FROM m IN t.team_members() WHERE m.name() == \"Fred\")",
];

#[test]
fn root_trace_rows_equal_result_cardinality() {
    let svc = service();
    let opts = SubmitOptions {
        trace: true,
        ..Default::default()
    };
    for q in QUERIES {
        let out = svc.submit_with(q, opts).unwrap();
        let trace = out.trace.as_ref().expect("trace requested");
        assert_eq!(
            trace.actual_rows, out.row_count as u64,
            "root operator rows must equal result cardinality for {q}"
        );
        // The root is cumulative, so its I/O must match the whole run's.
        assert_eq!(
            (trace.buffer_hits, trace.buffer_misses),
            (out.buffer_hits, out.buffer_misses),
            "trace root buffer I/O must reconcile with ExecStats for {q}"
        );
        // Children never account for more than their parent.
        for node in trace.flatten() {
            let child_ns: u64 = node.children.iter().map(|c| c.elapsed_ns).sum();
            assert!(node.elapsed_ns >= child_ns, "cumulative time in {q}");
        }
    }
}

#[test]
fn histogram_counts_sum_to_observation_count() {
    let svc = service();
    svc.set_profiling(true);
    let n = 17;
    for i in 0..n {
        let q = format!("SELECT t FROM Task t IN Tasks WHERE t.time() == {}", i * 10);
        svc.submit(&q).unwrap();
    }
    for stage in [
        "parse",
        "simplify",
        "fingerprint",
        "cache_probe",
        "optimize",
        "execute",
    ] {
        let snap = svc
            .telemetry()
            .histogram("oodb_stage_latency_ns", &[("stage", stage)])
            .snapshot();
        assert_eq!(snap.count, n, "one observation per submission ({stage})");
        assert_eq!(
            snap.counts.iter().sum::<u64>(),
            snap.count,
            "bucket counts must sum to the observation count ({stage})"
        );
        assert_eq!(snap.counts.len(), BUCKET_BOUNDS_NS.len() + 1);
    }
}

#[test]
fn cache_counters_balance_across_concurrent_replay() {
    let svc = service();
    let pool = WorkerPool::new(svc.clone(), 4);
    // Warm each shape once, sequentially: the service has no singleflight,
    // so two workers missing the same cold shape concurrently would both
    // (correctly) count a miss and make the per-shape assertion flaky.
    for q in QUERIES {
        svc.submit(q).unwrap();
    }
    let replays = 56;
    let submissions = replays + QUERIES.len();
    let pending: Vec<_> = (0..replays)
        .map(|i| {
            pool.submit(
                QUERIES[i % QUERIES.len()].to_string(),
                SubmitOptions::default(),
            )
        })
        .collect();
    for p in pending {
        p.wait().unwrap();
    }
    pool.shutdown();

    let stats = svc.cache().stats();
    assert_eq!(
        stats.hits + stats.misses,
        submissions as u64,
        "every submission probes the cache exactly once"
    );
    assert_eq!(stats.misses, QUERIES.len() as u64, "one miss per shape");

    let text = svc.metrics_prometheus();
    assert!(
        text.contains(&format!("oodb_submissions_total {submissions}")),
        "{text}"
    );
    assert!(
        text.contains(&format!("oodb_plancache_hits_total {}", stats.hits)),
        "{text}"
    );
    // Worker job counters must account for every pooled replay (the warm-up
    // submissions went straight to the service, not through the pool).
    let jobs: u64 = text
        .lines()
        .filter(|l| l.starts_with("oodb_worker_jobs_total"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(jobs, replays as u64);
    // The queue fully drained.
    assert!(text.contains("oodb_queue_depth 0"), "{text}");
}

/// The interval-audit counters export, and stay at zero on the seed
/// corpus: the catalog describes the generated store correctly, so
/// neither the estimate-side nor the actual-rows-side check may fire.
#[test]
fn interval_audit_counters_are_zero_on_seed_corpus() {
    let svc = service();
    let opts = SubmitOptions {
        trace: true,
        ..Default::default()
    };
    for q in QUERIES {
        svc.submit_with(q, opts).unwrap();
    }
    let text = svc.metrics_prometheus();
    assert!(
        text.contains("oodb_interval_violations_total 0"),
        "estimate escaped its sound interval:\n{text}"
    );
    assert!(
        text.contains("oodb_actual_card_violations_total 0"),
        "actual rows escaped the catalog-derived interval:\n{text}"
    );
    assert!(text.contains("oodb_verify_violations_total 0"), "{text}");
}

#[test]
fn traced_and_untraced_runs_agree() {
    let svc = service();
    let traced = svc
        .submit_with(
            QUERIES[0],
            SubmitOptions {
                trace: true,
                ..Default::default()
            },
        )
        .unwrap();
    let plain = svc.submit(QUERIES[0]).unwrap();
    assert_eq!(traced.rows, plain.rows, "tracing must not change answers");
    assert_eq!(
        (traced.buffer_hits + traced.buffer_misses > 0),
        (plain.buffer_hits + plain.buffer_misses > 0)
    );
}
