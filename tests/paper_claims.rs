//! Integration tests asserting the paper's headline experimental claims
//! hold in this reproduction — orderings, crossovers, and rough factors,
//! per the §4 evaluation.

use oodb_bench::queries;
use oodb_core::config::rule_names as rn;
use oodb_core::{greedy_plan, CostParams, OpenOodb, OptimizerConfig};
use oodb_object::paper::paper_model;
use open_oodb::prelude::*;

fn optimize(q: &queries::PaperQuery, config: OptimizerConfig) -> oodb_core::OptimizeOutcome {
    OpenOodb::with_config(&q.env, config)
        .optimize(&q.plan, q.result_vars)
        .expect("feasible plan")
}

/// Table 2: the cost ladder for Query 1 — full rule set beats
/// no-commutativity by roughly 4×, which in turn beats window-1 assembly.
#[test]
fn table2_cost_ladder() {
    let m = paper_model();
    let all = optimize(&queries::query1(&m), OptimizerConfig::all_rules());
    let wo_comm = optimize(
        &queries::query1(&m),
        OptimizerConfig::without_join_commutativity(),
    );
    let wo_window = optimize(&queries::query1(&m), OptimizerConfig::without_window());

    let (a, b, c) = (
        all.cost.total(),
        wo_comm.cost.total(),
        wo_window.cost.total(),
    );
    assert!(a < b && b < c, "ladder must be ordered: {a} {b} {c}");
    // Paper factors: 4.2× and 7.4× of optimal. Accept the right ballpark.
    assert!(b / a > 3.0 && b / a < 7.0, "w/o comm factor {}", b / a);
    assert!(c / a > 5.0 && c / a < 12.0, "w/o window factor {}", c / a);
    // "Optimization time decreases as rules are disabled": search effort
    // must shrink too.
    assert!(wo_comm.stats.effort() < all.stats.effort());
}

/// Table 2: the optimal Query 1 plan has the Figure 6 shape — two hash
/// joins, assembly only for the extent-less Plant, and the Department
/// side filtered before joining.
#[test]
fn figure6_plan_shape() {
    let m = paper_model();
    let q = queries::query1(&m);
    let out = optimize(&q, OptimizerConfig::all_rules());
    let hhj = out
        .plan
        .iter_ops()
        .into_iter()
        .filter(|op| matches!(op, PhysicalOp::HybridHashJoin { .. }))
        .count();
    assert_eq!(hhj, 2, "two hybrid hash joins as in Figure 6");
    let assemblies: Vec<_> = out
        .plan
        .iter_ops()
        .into_iter()
        .filter_map(|op| match op {
            PhysicalOp::Assembly { targets, .. } => Some(targets.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(assemblies.len(), 1, "assembly only for the Plant component");
    assert_eq!(assemblies[0], vec![q.var("dp")]);
}

/// Figure 7: without join commutativity the plan degenerates to pointer
/// chasing over the Employees scan (no hash joins at all).
#[test]
fn figure7_naive_pointer_chasing() {
    let m = paper_model();
    let q = queries::query1(&m);
    let out = optimize(&q, OptimizerConfig::without_join_commutativity());
    assert!(
        !out.plan
            .contains_op(&|op| matches!(op, PhysicalOp::HybridHashJoin { .. })),
        "hash join requires commutativity to orient the build side"
    );
    assert!(out.plan.contains_op(
        &|op| matches!(op, PhysicalOp::FileScan { coll, .. } if *coll == m.ids.employees)
    ));
}

/// Queries 2/3: collapse-to-index-scan wins by orders of magnitude; the
/// assembly enforcer preserves most of that win when the mayor must be
/// retrieved.
#[test]
fn query2_query3_magnitudes() {
    let m = paper_model();
    let q2_fast = optimize(&queries::query2(&m), OptimizerConfig::all_rules());
    let q2_naive = optimize(
        &queries::query2(&m),
        OptimizerConfig::without(&[rn::COLLAPSE_TO_INDEX_SCAN, rn::MAT_TO_JOIN]),
    );
    // Paper: 0.08 s vs 119.6 s.
    assert!(q2_fast.cost.total() < 0.5);
    assert!(q2_naive.cost.total() > 50.0);
    assert!(q2_naive.cost.total() / q2_fast.cost.total() > 500.0);

    let q3 = optimize(&queries::query3(&m), OptimizerConfig::all_rules());
    // Paper: 0.12 s — barely above Query 2, three orders below naive.
    assert!(q3.cost.total() < 0.5, "{}", q3.cost.total());
    assert!(q3.cost.total() > q2_fast.cost.total());
    // And the plan really is enforcer-over-index-scan.
    assert!(matches!(
        q3.plan.children[0].op,
        PhysicalOp::Assembly { .. }
    ));
    assert!(matches!(
        q3.plan.children[0].children[0].op,
        PhysicalOp::IndexScan { .. }
    ));
}

/// Table 3: greedy equals optimal when there is at most one useful index,
/// and loses by several× when both exist.
#[test]
fn table3_greedy_vs_cost_based() {
    let m = paper_model();
    let ratio = |keep: &[&str]| -> (f64, f64) {
        let catalog = m.catalog.with_only_indexes(keep);
        let q = queries::query4_with_catalog(&m, catalog);
        let out = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules())
            .optimize(&q.plan, q.result_vars)
            .unwrap();
        let greedy = greedy_plan(&q.env, CostParams::default(), &q.plan).unwrap();
        (out.cost.total(), greedy.total_io_s() + greedy.total_cpu_s())
    };

    let (opt_time, greedy_time) = ratio(&["Tasks_time"]);
    assert!(
        (greedy_time - opt_time).abs() / opt_time < 0.3,
        "time-only: greedy ≈ optimal ({opt_time} vs {greedy_time})"
    );

    let (opt_both, greedy_both) = ratio(&["Tasks_time", "Employees_name"]);
    assert!(
        greedy_both / opt_both > 2.5,
        "with both indexes greedy must lose by several x: {opt_both} vs {greedy_both}"
    );
    assert!(
        (opt_both - opt_time).abs() / opt_time < 0.05,
        "the extra index must not change the cost-based plan"
    );

    let (opt_none, greedy_none) = ratio(&[]);
    assert!(opt_none > opt_both * 2.0, "indexes must help");
    assert!(greedy_none > greedy_both, "greedy none is the naive plan");
}

/// "Moderately complex queries should be optimized on today's
/// workstations in less than 1 sec" — on a 2020s machine, milliseconds.
#[test]
fn optimization_time_under_paper_budget() {
    let m = paper_model();
    for q in [
        queries::query1(&m),
        queries::query2(&m),
        queries::query3(&m),
        queries::query4(&m),
        queries::fig2_query(&m),
    ] {
        let t0 = std::time::Instant::now();
        let _ = optimize(&q, OptimizerConfig::all_rules());
        let elapsed = t0.elapsed();
        assert!(
            elapsed.as_secs_f64() < 1.0,
            "optimization took {elapsed:?}, over the paper's 1 s budget"
        );
    }
}

/// Branch-and-bound pruning (a framework feature the paper left
/// unevaluated) must never change the winner, only the effort.
#[test]
fn pruning_is_plan_preserving() {
    let m = paper_model();
    for mk in [
        queries::query1 as fn(&_) -> _,
        queries::query2,
        queries::query3,
        queries::query4,
    ] {
        let exhaustive = optimize(&mk(&m), OptimizerConfig::all_rules());
        let pruned = optimize(
            &mk(&m),
            OptimizerConfig {
                prune: true,
                ..OptimizerConfig::all_rules()
            },
        );
        assert!(
            (exhaustive.cost.total() - pruned.cost.total()).abs() < 1e-9,
            "pruning changed the plan cost"
        );
    }
}

/// The Figure 2 two-branch path query optimizes and its plan resolves
/// both the mayor and president chains.
#[test]
fn figure2_query_optimizes() {
    let m = paper_model();
    let q = queries::fig2_query(&m);
    let out = optimize(&q, OptimizerConfig::all_rules());
    assert!(out.cost.total() > 0.0);
    // All three components must be materialized somewhere (assembly,
    // pointer join, warm scan or hash join against their domains).
    let text = oodb_algebra::display::render_physical(&q.env, &out.plan);
    for var in ["c.mayor", "c.country", "c.country.president"] {
        assert!(text.contains(var), "{var} missing from plan:\n{text}");
    }
}

/// Figure 11: the recorded search trace shows the goal-directed story —
/// the {city, mayor} goal is won by the assembly enforcer sitting on the
/// collapsed index scan that solved the weaker {city} goal.
#[test]
fn figure11_search_trace_tells_the_enforcer_story() {
    let m = paper_model();
    let q = queries::query3(&m);
    let opt = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules());
    let (out, trace) = opt
        .optimize_traced(&q.plan, q.result_vars)
        .expect("traced plan");
    let text = trace.join("\n");
    assert!(
        text.contains("requiring {c, c.mayor} in memory"),
        "the Alg-Project input goal must appear:\n{text}"
    );
    assert!(
        text.contains("won by collapse-to-index-scan"),
        "the weaker {{c}} goal is won by the index scan:\n{text}"
    );
    assert!(
        text.contains("won by assembly-enforcer"),
        "the enforcer must close the gap:\n{text}"
    );
    // And tracing must not change the outcome.
    let plain = opt.optimize(&q.plan, q.result_vars).unwrap();
    assert!((plain.cost.total() - out.cost.total()).abs() < 1e-12);
}
