//! The plan-space auditor, end to end: for each paper query the
//! enumeration oracle lists every physical plan the memo encodes, the
//! winner must be cost-minimal over that space, every estimate must sit
//! inside its sound cardinality interval, and — the part `oodb-core`
//! cannot do itself — **every enumerated plan must execute to the same
//! canonical result bytes**. Row order is plan-dependent (hash join vs
//! pointer join), so results are canonicalized to a sorted multiset
//! before the byte comparison; the queries have set semantics.
//!
//! `OODB_AUDIT_QUICK=1` (the CI audit job) shrinks the store and the
//! enumeration limits so the corpus runs in seconds.

use oodb_exec::ExecResult;
use open_oodb::prelude::*;
use open_oodb::volcano::EnumLimits;
use open_oodb::zql;

fn quick() -> bool {
    std::env::var("OODB_AUDIT_QUICK").is_ok_and(|v| v != "0")
}

fn limits() -> EnumLimits {
    if quick() {
        EnumLimits {
            max_groups: 128,
            max_exprs: 1024,
            max_plans: 2_000,
        }
    } else {
        EnumLimits::default()
    }
}

fn db() -> (Store, open_oodb::object::paper::PaperModel) {
    generate_paper_db(GenConfig {
        scale_div: if quick() { 200 } else { 50 },
        ..Default::default()
    })
}

/// Canonical result bytes: each row rendered, sorted as a multiset.
/// Tuples are restricted to the query's result variables — plan families
/// legitimately differ in which *auxiliary* variables they leave bound
/// (a collapsed index scan never binds the mayor variable; an assembly
/// plan does).
fn canon(result: &ExecResult, vars: VarSet) -> String {
    let mut lines: Vec<String> = match result {
        ExecResult::Rows(rows) => rows.iter().map(|r| format!("{r:?}")).collect(),
        ExecResult::Tuples(ts) => ts
            .iter()
            .map(|t| {
                let bound: Vec<String> = vars
                    .iter()
                    .map(|v| format!("v{}={:?}", v.index(), t.get(v)))
                    .collect();
                bound.join(",")
            })
            .collect(),
    };
    lines.sort();
    lines.join("\n")
}

/// Runs the full audit on one query: oracle assertions plus execution of
/// every enumerated plan. Returns the number of plans exercised.
fn audit_query(src: &str, label: &str) -> usize {
    let (store, model) = db();
    let q = zql::compile(src, &model.schema, &model.catalog).expect("compiles");
    let opt = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules());
    // Plain optimization first, timed, for the EXPERIMENTS.md overhead
    // table (`-- --nocapture` prints the comparison).
    let t0 = std::time::Instant::now();
    opt.optimize(&q.plan, q.result_vars).expect("feasible plan");
    let optimize = t0.elapsed();
    let t1 = std::time::Instant::now();
    let report = opt
        .audit(&q.plan, q.result_vars, None, limits())
        .expect("feasible plan");
    let audit = t1.elapsed();
    eprintln!(
        "{label}: {} plans; optimize {:?}, audit {:?} ({:.1}x)",
        report.plans_enumerated(),
        optimize,
        audit,
        audit.as_secs_f64() / optimize.as_secs_f64().max(1e-9)
    );
    assert!(
        !report.truncated,
        "{label}: plan space exceeded the audit limits — a cut oracle proves nothing"
    );
    assert!(
        report.cost_minimal,
        "{label}: winner {} beaten by an enumerated plan at {}",
        report.winner_cost, report.best_cost
    );
    assert!(
        report.interval_diags.is_empty(),
        "{label}: estimates escaped their sound intervals: {:?}",
        report.interval_diags
    );

    let (wres, _) = execute(&store, &q.env, &report.winner);
    let want = canon(&wres, q.result_vars);
    for (i, plan) in report.plans.iter().enumerate() {
        let (r, _) = execute(&store, &q.env, plan);
        assert_eq!(
            canon(&r, q.result_vars),
            want,
            "{label}: plan {i} of {} diverged from the winner:\n{}",
            report.plans.len(),
            render_physical(&q.env, plan)
        );
    }
    report.plans.len()
}

/// Query 1 (Figure 1): employees × departments with a three-way
/// conjunction and a projection root.
#[test]
fn query1_all_enumerated_plans_agree() {
    let n = audit_query(
        r#"SELECT Newobject( e.name(), d.name() )
FROM Employee e IN Employees, Department d IN Department
WHERE d.floor() == 3 && e.age() >= 32 && e.last_raise() >= Date(1992,1,1)
  && e.dept() == d ;"#,
        "query1",
    );
    assert!(
        n >= 2,
        "query1 space has competing join strategies, got {n}"
    );
}

/// Query 2 (Figure 8): the collapse-to-index-scan query.
#[test]
fn query2_all_enumerated_plans_agree() {
    let n = audit_query(
        r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#,
        "query2",
    );
    assert!(
        n >= 3,
        "query2 space: collapse, assembly, and join families, got {n}"
    );
}

/// Query 3 (Figure 10): Query 2 plus a projection that forces the
/// mayor's state into memory (the assembly-enforcer query).
#[test]
fn query3_all_enumerated_plans_agree() {
    let n = audit_query(
        r#"SELECT Newobject(c.mayor().age(), c.name())
FROM City c IN Cities WHERE c.mayor().name() == "Joe""#,
        "query3",
    );
    assert!(n >= 2, "got {n}");
}

/// Query 4: the EXISTS / set-valued traversal query.
#[test]
fn query4_all_enumerated_plans_agree() {
    let n = audit_query(
        r#"SELECT t FROM Task t IN Tasks
WHERE t.time() == 100
  && EXISTS (SELECT m FROM m IN t.team_members() WHERE m.name() == "Fred")"#,
        "query4",
    );
    assert!(n >= 2, "got {n}");
}

/// The execute-time half of the interval audit: actual row counts of a
/// traced run stay inside the intervals derived from the catalog — zero
/// false positives on a store the catalog describes correctly.
#[test]
fn traced_actuals_stay_inside_intervals_on_seed_corpus() {
    let (store, model) = db();
    for src in [
        r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#,
        r#"SELECT t FROM Task t IN Tasks WHERE t.time() == 100"#,
    ] {
        let q = zql::compile(src, &model.schema, &model.catalog).expect("compiles");
        let out = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules())
            .optimize(&q.plan, q.result_vars)
            .expect("plan");
        let (_, _, trace) = execute_traced(&store, &q.env, &out.plan);
        let diags = open_oodb::core::verify::check_actual_cards(&q.env, &out.plan, &trace);
        assert!(diags.is_empty(), "{src}: {diags:?}");
    }
}
