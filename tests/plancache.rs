//! End-to-end plan-cache correctness: the invalidation guarantees the
//! query service must uphold — a cached plan is served only when the
//! query, rule configuration, statistics epoch, and index set all match,
//! and concurrent submission is observationally identical to serial.

use oodb_core::config::rule_names;
use oodb_core::{CostParams, OptimizerConfig};
use oodb_service::{QueryOutput, QueryService, SubmitOptions, WorkerPool};
use oodb_storage::{generate_paper_db, GenConfig};

fn service() -> QueryService {
    let (store, _model) = generate_paper_db(GenConfig {
        scale_div: 100,
        ..Default::default()
    });
    QueryService::new(
        store,
        CostParams::default(),
        OptimizerConfig::all_rules(),
        128,
        8,
    )
}

const Q_MAYOR: &str = r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#;
const Q_TIME: &str = "SELECT t FROM Task t IN Tasks WHERE t.time() == 100";

#[test]
fn identical_query_reparse_hits() {
    let svc = service();
    let a = svc.submit(Q_MAYOR).unwrap();
    let b = svc.submit(Q_MAYOR).unwrap();
    assert!(!a.cache_hit);
    assert!(b.cache_hit, "re-parsing the same text must hit the cache");
    assert_eq!(a.rows, b.rows);
    // And a *textual variant* of the same query shares the entry.
    let c = svc
        .submit(r#"SELECT town FROM City town IN Cities WHERE "Joe" == town.mayor().name()"#)
        .unwrap();
    assert!(
        c.cache_hit,
        "canonical fingerprint must erase naming/operand order"
    );
    assert_eq!(a.rows, c.rows);
}

#[test]
fn stats_epoch_bump_forces_reoptimization() {
    let svc = service();
    let before = svc.store().catalog().stats_epoch();
    let a = svc.submit(Q_TIME).unwrap();
    assert!(!a.cache_hit);
    assert!(svc.submit(Q_TIME).unwrap().cache_hit);

    svc.refresh_statistics(16);
    assert!(
        svc.store().catalog().stats_epoch() > before,
        "collect_statistics must bump the epoch"
    );
    let c = svc.submit(Q_TIME).unwrap();
    assert!(
        !c.cache_hit,
        "a statistics refresh must force re-optimization"
    );
    assert_eq!(a.rows, c.rows, "same data, same answer");
    // The re-optimized plan is itself cached again.
    assert!(svc.submit(Q_TIME).unwrap().cache_hit);
}

#[test]
fn rule_config_toggle_never_serves_foreign_plan() {
    let svc = service();
    let all = svc.submit(Q_MAYOR).unwrap();
    assert!(!all.cache_hit);
    assert!(
        !all.indexes_used.is_empty(),
        "all-rules plan uses the path index"
    );

    // Disable the collapse-to-index-scan rule: the cached all-rules plan
    // (which scans the index) must not be served.
    svc.set_config(OptimizerConfig::all_rules().and_without(rule_names::COLLAPSE_TO_INDEX_SCAN));
    let restricted = svc.submit(Q_MAYOR).unwrap();
    assert!(
        !restricted.cache_hit,
        "a rule toggle must never serve a plan cached under other rules"
    );
    assert_eq!(all.rows, restricted.rows, "plans differ, answers must not");

    // Switching back serves the original entry — it never left the cache.
    svc.set_config(OptimizerConfig::all_rules());
    assert!(svc.submit(Q_MAYOR).unwrap().cache_hit);
}

#[test]
fn dropped_index_is_never_served() {
    let svc = service();
    let with_index = svc.submit(Q_MAYOR).unwrap();
    assert!(with_index
        .indexes_used
        .contains(&"Cities_mayor_name".to_string()));

    // Physical-design change: drop every index.
    svc.restrict_indexes(&[]);
    let without = svc.submit(Q_MAYOR).unwrap();
    assert!(!without.cache_hit, "index drop must invalidate");
    assert!(
        without.indexes_used.is_empty(),
        "no plan may touch a dropped index: {:?}",
        without.indexes_used
    );
    assert_eq!(with_index.rows, without.rows);

    // Dropping a *subset* also invalidates: a service restricted to the
    // unrelated Tasks index must not plan over the dropped mayor index.
    let svc2 = service();
    svc2.restrict_indexes(&["Tasks_time"]);
    let partial = svc2.submit(Q_MAYOR).unwrap();
    assert!(!partial
        .indexes_used
        .contains(&"Cities_mayor_name".to_string()));
    assert_eq!(with_index.rows, partial.rows);
}

#[test]
fn concurrent_submit_is_byte_identical_to_serial() {
    // One Zipf-ish workload, three queries, interleaved; serial reference
    // first, then the same stream through 8 workers on a fresh service.
    let queries = [
        Q_MAYOR,
        Q_TIME,
        r#"SELECT e FROM Employee e IN Employees WHERE e.name() == "Fred""#,
    ];
    let stream: Vec<&str> = (0..48).map(|i| queries[i % 3]).collect();

    let serial_svc = service();
    let serial: Vec<QueryOutput> = stream
        .iter()
        .map(|q| serial_svc.submit(q).unwrap())
        .collect();

    let par_svc = service();
    let pool = WorkerPool::new(par_svc.clone(), 8);
    let pending: Vec<_> = stream
        .iter()
        .map(|q| pool.submit(*q, SubmitOptions::default()))
        .collect();
    let parallel: Vec<QueryOutput> = pending.into_iter().map(|p| p.wait().unwrap()).collect();
    pool.shutdown();

    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.rows, p.rows, "concurrent results must be byte-identical");
        assert_eq!(s.row_count, p.row_count);
    }
    // The cache actually worked under concurrency: only 3 distinct plans.
    let stats = par_svc.cache().stats();
    assert!(stats.hits >= stream.len() as u64 - 2 * queries.len() as u64);
}
