//! Chaos replay: the paper's four query shapes under an injected storage
//! fault model. The invariants are absolute — no panic ever escapes, every
//! submission resolves to `Ok` or a *typed* `ServiceError`, transient
//! faults retry to success, and the telemetry counters reconcile exactly
//! with what the injector says it did.
//!
//! The fault stream is deterministic per seed. Failures print the seed;
//! re-run with `OODB_CHAOS_SEED=<seed>` to reproduce.

use oodb_core::{CostParams, OptimizerConfig};
use oodb_service::{
    AdmissionConfig, QueryService, ServiceError, ShedReason, SubmitOptions, WorkerPool,
};
use oodb_storage::{generate_paper_db, FaultConfig, FaultInjector, GenConfig, MemoryGovernor};
use open_oodb::fault::CancelToken;
use std::time::Duration;

/// The paper's four query shapes (Q1–Q4).
const QUERIES: &[&str] = &[
    // Q1: the Dallas report — path-expression join chain.
    "SELECT Newobject(e.name(), e.job().name(), e.dept().name()) \
     FROM Employee e IN Employees \
     WHERE e.dept().plant().location() == \"Dallas\"",
    // Q2: mayor-name selection (collapses to one path-index scan).
    r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#,
    // Q3: projection needing the mayor in memory (assembly enforcer).
    r#"SELECT Newobject(c.mayor().age(), c.name()) FROM City c IN Cities WHERE c.mayor().name() == "Joe""#,
    // Q4: set-valued path with EXISTS (unnest + mat).
    "SELECT t FROM Task t IN Tasks WHERE t.time() == 100 \
     && EXISTS (SELECT m FROM m IN t.team_members() WHERE m.name() == \"Fred\")",
];

fn service() -> QueryService {
    let (store, _model) = generate_paper_db(GenConfig {
        scale_div: 100,
        ..Default::default()
    });
    QueryService::new(
        store,
        CostParams::default(),
        OptimizerConfig::all_rules(),
        128,
        8,
    )
}

/// Seed for the chaos run: fixed by default, overridable for CI's
/// randomized leg. Printed so a failing run is reproducible.
fn chaos_seed() -> u64 {
    let seed = std::env::var("OODB_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    eprintln!("chaos seed: {seed} (set OODB_CHAOS_SEED to override)");
    seed
}

/// Extracts a counter's value from a Prometheus exposition dump.
fn counter(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(' ')))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Replays Q1–Q4 through a worker pool at several transient-fault rates:
/// every reply must be `Ok`, answers must match the fault-free baseline,
/// and the service's retry counter must equal the injector's transient
/// fault count (each injected transient fault aborts exactly one attempt,
/// which is retried exactly once).
#[test]
fn chaos_replay_under_transient_faults() {
    let seed = chaos_seed();
    for &rate in &[0.0, 0.01, 0.05, 0.15] {
        let svc = service();
        // Fault-free baseline (also warms the plan cache so the replay
        // exercises execution faults, not concurrent cold misses).
        let baseline: Vec<Vec<String>> = QUERIES
            .iter()
            .map(|q| {
                let mut rows = svc.submit(q).expect("baseline must run clean").rows;
                rows.sort();
                rows
            })
            .collect();

        let injector = FaultInjector::new(FaultConfig {
            read_fault_rate: rate,
            seed,
            ..Default::default()
        });
        svc.attach_fault_injector(injector.clone());

        let pool = WorkerPool::new(svc.clone(), 4);
        let submissions = 48;
        let opts = SubmitOptions {
            retries: 64,
            ..Default::default()
        };
        let pending: Vec<_> = (0..submissions)
            .map(|i| pool.submit(QUERIES[i % QUERIES.len()].to_string(), opts))
            .collect();
        let mut total_retries = 0u64;
        for (i, p) in pending.into_iter().enumerate() {
            let out = p
                .wait()
                .unwrap_or_else(|e| panic!("seed {seed} rate {rate}: submission {i}: {e}"));
            assert!(!out.degraded, "no deadline was set (seed {seed})");
            total_retries += u64::from(out.retries);
            let mut rows = out.rows;
            rows.sort();
            assert_eq!(
                rows,
                baseline[i % QUERIES.len()],
                "answers must survive transient faults (seed {seed}, rate {rate})"
            );
        }
        pool.shutdown();

        let stats = injector.stats();
        assert_eq!(stats.permanent, 0, "transient-only model (seed {seed})");
        assert_eq!(stats.panics, 0, "no panic stream configured (seed {seed})");
        if rate == 0.0 {
            assert_eq!(stats.injected, 0);
        }
        // Reconciliation: every transient fault aborted one attempt, and
        // every aborted attempt was retried (all submissions succeeded).
        let text = svc.metrics_prometheus();
        assert_eq!(
            counter(&text, "oodb_retries_total"),
            stats.transient,
            "retry counter must reconcile with injected faults \
             (seed {seed}, rate {rate}):\n{text}"
        );
        assert_eq!(counter(&text, "oodb_retries_total"), total_retries);
        assert_eq!(counter(&text, "oodb_injected_faults_total"), stats.injected);
        assert_eq!(counter(&text, "oodb_submission_panics_total"), 0);
        assert!(text.contains("oodb_queue_depth 0"), "{text}");
    }
}

/// Permanent faults are not retried — they surface immediately as a typed
/// error — and detaching the injector restores a healthy service.
#[test]
fn permanent_faults_surface_without_retry() {
    let svc = service();
    svc.attach_fault_injector(FaultInjector::new(FaultConfig {
        read_fault_rate: 1.0,
        permanent_ratio: 1.0,
        seed: chaos_seed(),
        ..Default::default()
    }));
    let err = svc
        .submit_with(
            QUERIES[1],
            SubmitOptions {
                retries: 8,
                ..Default::default()
            },
        )
        .unwrap_err();
    assert_eq!(
        err,
        ServiceError::StorageFault {
            transient: false,
            retries: 0,
        },
        "permanent faults must not burn the retry budget"
    );
    svc.detach_fault_injector();
    assert!(
        svc.submit(QUERIES[1]).is_ok(),
        "detaching heals the service"
    );
}

/// An immediately-expired deadline never breaks a query: the optimizer
/// degrades to the greedy plan, which still produces the right answer and
/// lints clean, and the degradation is visible in the output and metrics.
#[test]
fn optimizer_deadline_degrades_to_greedy() {
    let baseline = {
        let svc = service();
        let mut rows = svc.submit(QUERIES[3]).unwrap().rows;
        rows.sort();
        rows
    };
    let svc = service();
    let out = svc
        .submit_with(
            QUERIES[3],
            SubmitOptions {
                deadline: Some(Duration::from_nanos(1)),
                ..Default::default()
            },
        )
        .expect("degraded plan must still answer");
    assert!(out.degraded, "1 ns leaves no time for the full search");
    let mut rows = out.rows;
    rows.sort();
    assert_eq!(rows, baseline, "greedy fallback must agree with the winner");
    let text = svc.metrics_prometheus();
    assert_eq!(counter(&text, "oodb_fallback_plans_total"), 1, "{text}");
    // The fallback plan went through oodb-verify's static lint on its way
    // out; the greedy plan for Q4 is clean.
    assert_eq!(counter(&text, "oodb_verify_violations_total"), 0, "{text}");
    // Degraded plans are never cached: a relaxed resubmission re-optimizes.
    let relaxed = svc.submit(QUERIES[3]).unwrap();
    assert!(!relaxed.degraded);
    assert_eq!(
        svc.cache().stats().hits,
        0,
        "degraded plan must not be cached"
    );
}

/// Injected per-page latency plus a short deadline times execution out —
/// as a typed error with the stage named, counted in telemetry.
#[test]
fn execution_deadline_times_out() {
    let svc = service();
    svc.submit(QUERIES[0]).unwrap(); // warm the plan cache
    svc.attach_fault_injector(FaultInjector::new(FaultConfig {
        latency_ns: 500_000,
        seed: chaos_seed(),
        ..Default::default()
    }));
    let err = svc
        .submit_with(
            QUERIES[0],
            SubmitOptions {
                deadline: Some(Duration::from_millis(2)),
                ..Default::default()
            },
        )
        .unwrap_err();
    assert_eq!(err, ServiceError::DeadlineExceeded { stage: "execute" });
    let text = svc.metrics_prometheus();
    assert_eq!(counter(&text, "oodb_timeouts_total"), 1, "{text}");
}

/// A cancelled token stops the submission with a typed error; a fresh
/// token runs normally.
#[test]
fn cancellation_is_a_typed_error() {
    let svc = service();
    let cancel = CancelToken::new();
    cancel.cancel();
    assert_eq!(
        svc.submit_cancellable(QUERIES[1], SubmitOptions::default(), &cancel),
        Err(ServiceError::Cancelled)
    );
    let fresh = CancelToken::new();
    assert!(svc
        .submit_cancellable(QUERIES[1], SubmitOptions::default(), &fresh)
        .is_ok());
}

/// A zero row budget interrupts any materializing run with the budget in
/// the error.
#[test]
fn row_budget_bounds_execution() {
    let svc = service();
    assert_eq!(
        svc.submit_with(
            QUERIES[0],
            SubmitOptions {
                row_budget: Some(0),
                ..Default::default()
            },
        ),
        Err(ServiceError::RowBudgetExceeded { budget: 0 })
    );
}

/// Overhead gate for EXPERIMENTS.md: an attached-but-disabled injector
/// must cost (almost) nothing on the hot read path. Timing-sensitive, so
/// ignored by default; `cargo test -- --ignored` runs it.
#[test]
#[ignore = "timing-sensitive; run explicitly for the overhead table"]
fn injector_disabled_overhead_is_negligible() {
    let svc = service();
    for q in QUERIES {
        svc.submit(q).unwrap(); // warm cache and buffer pool
    }
    let rounds = 200;
    let replay = |svc: &QueryService| {
        let start = std::time::Instant::now();
        for i in 0..rounds {
            svc.submit(QUERIES[i % QUERIES.len()]).unwrap();
        }
        start.elapsed()
    };
    replay(&svc); // untimed: settle the buffer pool and allocator
    let without = replay(&svc);
    let injector = FaultInjector::new(FaultConfig {
        read_fault_rate: 0.05,
        seed: chaos_seed(),
        ..Default::default()
    });
    injector.set_enabled(false);
    svc.attach_fault_injector(injector);
    let with = replay(&svc);
    let overhead = with.as_secs_f64() / without.as_secs_f64() - 1.0;
    eprintln!(
        "disabled-injector overhead: {:+.2}% ({:?} -> {:?} over {rounds} replays)",
        overhead * 100.0,
        without,
        with
    );
    assert!(
        overhead < 0.10,
        "disabled injector cost {:.1}% (gate is <1% on quiet machines, \
         10% here to absorb CI noise)",
        overhead * 100.0
    );
}

// ---------------------------------------------------------------------------
// Memory governance under chaos (ISSUE 5 satellite: pressure × faults).
// `scripts/check.sh` selects these with `--test resilience memory`.
// ---------------------------------------------------------------------------

/// Q5: an explicit two-extent join. With pointer/merge join disabled the
/// optimizer must pick the hybrid hash join, the one operator whose
/// memory overflow takes the *spill* path (assembly and set ops shrink
/// their windows instead of touching disk).
const Q_JOIN: &str = "SELECT Newobject(e.name(), d.name()) \
     FROM Employee e IN Employees, Department d IN Department \
     WHERE e.dept() == d";

/// A service whose join plans must reserve memory: pointer join and merge
/// join are disabled, so equi-joins become hybrid hash joins.
fn governed_service() -> QueryService {
    let (store, _model) = generate_paper_db(GenConfig {
        scale_div: 100,
        ..Default::default()
    });
    QueryService::new(
        store,
        CostParams::default(),
        OptimizerConfig::without(&[
            oodb_core::config::rule_names::POINTER_JOIN,
            oodb_core::config::rule_names::MERGE_JOIN,
        ]),
        128,
        8,
    )
}

/// The tentpole acceptance replay: Q1–Q4 plus an explicit hash join run
/// at 25% of their measured working set, under transient storage faults
/// on top. Every answer must match the unconstrained baseline (operators
/// spill or shrink, they do not error), and when the pool quiesces the
/// governor's byte ledger must reconcile exactly: nothing still reserved,
/// reserves equal releases, spilled bytes written equal bytes read back.
#[test]
fn memory_pressure_replay_matches_baseline() {
    let seed = chaos_seed();
    let svc = governed_service();
    let queries: Vec<&str> = QUERIES.iter().copied().chain([Q_JOIN]).collect();

    // Unconstrained baseline rows, and per-query working sets measured
    // under an unlimited governor (peak bytes actually reserved).
    let governor = MemoryGovernor::unlimited();
    svc.attach_memory_governor(governor);
    let mut baseline = Vec::new();
    let mut peaks = Vec::new();
    for q in &queries {
        let out = svc.submit(q).expect("baseline must run clean");
        let mut rows = out.rows;
        rows.sort();
        baseline.push(rows);
        peaks.push(out.mem_peak_bytes);
    }
    let join_peak = *peaks.last().unwrap();
    assert!(
        join_peak > 0,
        "hash join must reserve memory or the pressure replay is vacuous"
    );
    let working_set: u64 = peaks.iter().sum();

    // 25% of the aggregate working set for the governor, and 25% of each
    // query's own working set for its grant, clamped into
    // [512, capacity/4]: the floor is the budget the service tests prove
    // forces the join to spill, and the ceiling guarantees four
    // concurrent grants can always reach their full budgets.
    let capacity = (working_set / 4).max(16 * 1024);
    let budgets: Vec<u64> = peaks
        .iter()
        .map(|p| (p / 4).clamp(512, capacity / 4))
        .collect();
    let governor = MemoryGovernor::new(capacity);
    svc.attach_memory_governor(governor.clone());

    let mut spill_pages_total = 0u64;
    for &rate in &[0.0, 0.05, 0.15] {
        let injector = FaultInjector::new(FaultConfig {
            read_fault_rate: rate,
            seed,
            ..Default::default()
        });
        svc.attach_fault_injector(injector);

        let pool = WorkerPool::new(svc.clone(), 4);
        let pending: Vec<_> = (0..40)
            .map(|i| {
                let opts = SubmitOptions {
                    retries: 64,
                    mem_budget: Some(budgets[i % queries.len()]),
                    ..Default::default()
                };
                pool.submit(queries[i % queries.len()].to_string(), opts)
            })
            .collect();
        for (i, p) in pending.into_iter().enumerate() {
            let budget = budgets[i % queries.len()];
            let out = p.wait().unwrap_or_else(|e| {
                panic!("seed {seed} rate {rate} budget {budget}: submission {i}: {e}")
            });
            assert!(
                out.mem_peak_bytes <= budget,
                "grant must cap the peak (seed {seed}, rate {rate}): \
                 {} > {budget}",
                out.mem_peak_bytes
            );
            spill_pages_total += out.spill_pages;
            let mut rows = out.rows;
            rows.sort();
            assert_eq!(
                rows,
                baseline[i % queries.len()],
                "answers must survive memory pressure + faults \
                 (seed {seed}, rate {rate}, budget {budget})"
            );
        }
        pool.shutdown();
        svc.detach_fault_injector();
    }

    assert!(
        spill_pages_total > 0,
        "a {}-byte grant must overflow the join's {join_peak}-byte \
         working set into spill pages",
        budgets.last().unwrap()
    );
    // Governor ledger reconciliation at quiescence.
    let stats = governor.stats();
    assert_eq!(stats.reserved, 0, "grants must release on drop: {stats:?}");
    assert_eq!(
        stats.reserved_total, stats.released_total,
        "byte ledger must balance: {stats:?}"
    );
    assert_eq!(
        stats.spill_bytes_written, stats.spill_bytes_read,
        "every spilled byte must be read back exactly once: {stats:?}"
    );
    assert!(stats.spill_bytes_written > 0, "{stats:?}");
    let text = svc.metrics_prometheus();
    assert!(
        counter(&text, "oodb_exec_spill_pages_written_total") > 0,
        "{text}"
    );
    assert!(text.contains("oodb_mem_capacity_bytes"), "{text}");
}

/// Saturation replay: a bounded worker pool under a burst sheds with the
/// typed `Overloaded(QueueFull)` error while every admitted submission
/// still completes with the right answer — degrade, don't collapse.
#[test]
fn memory_saturation_sheds_but_completes_inflight() {
    let svc = service();
    let baseline: Vec<Vec<String>> = QUERIES
        .iter()
        .map(|q| {
            let mut rows = svc.submit(q).expect("baseline must run clean").rows;
            rows.sort();
            rows
        })
        .collect();

    // Two workers, a queue of two, and a burst of 24 slow submissions:
    // the enqueue side is far faster than execution, so most must shed.
    let pool = WorkerPool::with_queue_limit(svc.clone(), 2, 2);
    let opts = SubmitOptions {
        realize_io_scale: 25.0,
        ..Default::default()
    };
    let pending: Vec<_> = (0..24)
        .map(|i| pool.submit(QUERIES[i % QUERIES.len()].to_string(), opts))
        .collect();
    let (mut served, mut shed) = (0u64, 0u64);
    for (i, p) in pending.into_iter().enumerate() {
        match p.wait() {
            Ok(out) => {
                let mut rows = out.rows;
                rows.sort();
                assert_eq!(rows, baseline[i % QUERIES.len()]);
                served += 1;
            }
            Err(ServiceError::Overloaded {
                reason: ShedReason::QueueFull,
            }) => shed += 1,
            Err(e) => panic!("only QueueFull shedding is acceptable: {e}"),
        }
    }
    assert!(served > 0, "admitted work must complete");
    assert!(shed > 0, "a 24-burst against queue depth 2 must shed");

    // The pool recovers once the burst drains: a normal submission runs.
    let after = pool
        .submit(QUERIES[0].to_string(), SubmitOptions::default())
        .wait()
        .expect("pool must recover after the burst");
    let mut rows = after.rows;
    rows.sort();
    assert_eq!(rows, baseline[0]);
    pool.shutdown();

    let text = svc.metrics_prometheus();
    assert_eq!(
        counter(&text, r#"oodb_shed_total{reason="queue_full"}"#),
        shed,
        "shed counter must reconcile with refused replies:\n{text}"
    );
    assert!(text.contains("oodb_queue_depth 0"), "{text}");
}

/// Circuit breaker integration: repeated grant exhaustion trips the
/// breaker, subsequent submissions fast-fail with `CircuitOpen` instead
/// of burning resources, and after the cooldown a healthy probe closes
/// it again.
#[test]
fn memory_breaker_fastfails_and_heals() {
    let svc = governed_service();
    let mut baseline = svc.submit(Q_JOIN).expect("clean run").rows;
    baseline.sort();

    svc.set_admission(AdmissionConfig {
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(60),
        ..Default::default()
    });

    // Two impossible grants (budget 0) are consecutive resource failures.
    for _ in 0..2 {
        let err = svc
            .submit_with(
                Q_JOIN,
                SubmitOptions {
                    mem_budget: Some(0),
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(
            matches!(err, ServiceError::MemoryExhausted { budget: 0, .. }),
            "a zero grant must exhaust, not loop: {err}"
        );
    }

    // Tripped: even a healthy submission fast-fails while the breaker is
    // open.
    assert_eq!(
        svc.submit(Q_JOIN).unwrap_err(),
        ServiceError::Overloaded {
            reason: ShedReason::CircuitOpen,
        },
        "breaker must fast-fail inside the cooldown window"
    );

    // After the cooldown the half-open probe succeeds and closes it.
    std::thread::sleep(Duration::from_millis(90));
    let mut rows = svc.submit(Q_JOIN).expect("half-open probe heals").rows;
    rows.sort();
    assert_eq!(rows, baseline, "healed service must answer correctly");
    assert!(svc.submit(Q_JOIN).is_ok(), "breaker stays closed");

    let text = svc.metrics_prometheus();
    assert_eq!(counter(&text, "oodb_breaker_trips_total"), 1, "{text}");
    assert_eq!(
        counter(&text, r#"oodb_shed_total{reason="circuit_open"}"#),
        1,
        "{text}"
    );
    assert!(text.contains("oodb_breaker_open 0"), "{text}");
}
