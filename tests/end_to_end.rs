//! End-to-end integration: ZQL text → parse → simplify → optimize →
//! execute against the generated store, with results checked against an
//! independent oracle, across competing rule configurations.

use oodb_core::config::rule_names as rn;
use open_oodb::prelude::*;
use open_oodb::zql;
use std::collections::HashSet;

fn db() -> (Store, open_oodb::object::paper::PaperModel) {
    generate_paper_db(GenConfig {
        scale_div: 20,
        ..Default::default()
    })
}

fn run(
    store: &Store,
    model: &open_oodb::object::paper::PaperModel,
    src: &str,
    config: OptimizerConfig,
) -> (usize, Vec<Vec<Value>>) {
    let q = zql::compile(src, &model.schema, &model.catalog).expect("compiles");
    let out = OpenOodb::with_config(&q.env, config)
        .optimize(&q.plan, q.result_vars)
        .expect("plan");
    let (result, _) = execute(store, &q.env, &out.plan);
    match result {
        oodb_exec::ExecResult::Rows(rows) => (rows.len(), rows),
        oodb_exec::ExecResult::Tuples(t) => (t.len(), vec![]),
    }
}

/// Query 2 executed through every plan family must return exactly the
/// cities whose mayor is named Joe — verified against direct traversal.
#[test]
fn query2_all_plans_agree_with_oracle() {
    let (store, model) = db();
    let oracle = store
        .members(model.ids.cities)
        .iter()
        .filter(|&&c| {
            store.eval_path(c, &[model.ids.city_mayor], model.ids.person_name) == Value::str("Joe")
        })
        .count();

    let src = r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#;
    for config in [
        OptimizerConfig::all_rules(),
        OptimizerConfig::without(&[rn::COLLAPSE_TO_INDEX_SCAN]),
        OptimizerConfig::without(&[rn::COLLAPSE_TO_INDEX_SCAN, rn::MAT_TO_JOIN]),
        OptimizerConfig::without(&[rn::POINTER_JOIN]),
        OptimizerConfig {
            enable_warm_assembly: true,
            ..OptimizerConfig::without(&[rn::COLLAPSE_TO_INDEX_SCAN])
        },
    ] {
        let (n, _) = run(&store, &model, src, config.clone());
        assert_eq!(n, oracle, "config {:?}", config.disabled_rules);
    }
}

/// The Figure 1 query end-to-end: projection rows match a hand-rolled
/// nested-loop oracle.
#[test]
fn figure1_query_matches_oracle() {
    let (store, model) = db();
    let src = r#"SELECT Newobject( e.name(), d.name() )
FROM Employee e IN Employees, Department d IN Department
WHERE d.floor() == 3 && e.age() >= 32 && e.last_raise() >= Date(1992,1,1)
  && e.dept() == d ;"#;

    let raise_cutoff = Value::Date(open_oodb::object::Date::from_ymd(1992, 1, 1));
    let mut oracle: Vec<(Value, Value)> = Vec::new();
    for &e in store.members(model.ids.employees) {
        let d = store
            .read_field(e, model.ids.emp_dept)
            .as_ref_oid()
            .unwrap();
        let age_ok = store.read_field(e, model.ids.person_age).as_int().unwrap() >= 32;
        let floor_ok = store.read_field(d, model.ids.dept_floor) == &Value::Int(3);
        let raise_ok = store
            .read_field(e, model.ids.emp_last_raise)
            .partial_cmp_val(&raise_cutoff)
            .is_some_and(|o| o != std::cmp::Ordering::Less);
        if age_ok && floor_ok && raise_ok {
            oracle.push((
                store.read_field(e, model.ids.person_name).clone(),
                store.read_field(d, model.ids.dept_name).clone(),
            ));
        }
    }

    let (n, rows) = run(&store, &model, src, OptimizerConfig::all_rules());
    assert_eq!(n, oracle.len());
    let got: HashSet<(String, String)> = rows
        .iter()
        .map(|r| (r[0].to_string(), r[1].to_string()))
        .collect();
    let want: HashSet<(String, String)> = oracle
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    assert_eq!(got, want);
}

/// Query 4 (EXISTS form): each reported task really has time 100 and a
/// Fred on the team; the count matches direct evaluation, for both the
/// cost-based and greedy plans.
#[test]
fn query4_exists_agrees_with_oracle_and_greedy() {
    let (store, model) = db();
    let oracle = store
        .members(model.ids.tasks)
        .iter()
        .filter(|&&t| {
            if store.read_field(t, model.ids.task_time) != &Value::Int(100) {
                return false;
            }
            store
                .read_field(t, model.ids.task_team_members)
                .as_ref_set()
                .unwrap()
                .iter()
                .any(|&m| store.read_field(m, model.ids.person_name) == &Value::str("Fred"))
        })
        .count();

    let src = r#"SELECT t FROM Task t IN Tasks
WHERE t.time() == 100
  && EXISTS (SELECT m FROM m IN t.team_members() WHERE m.name() == "Fred")"#;
    let q = zql::compile(src, &model.schema, &model.catalog).unwrap();
    let out = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules())
        .optimize(&q.plan, q.result_vars)
        .unwrap();
    let (result, _) = execute(&store, &q.env, &out.plan);
    // The unnest-based translation yields one tuple per matching member;
    // distinct tasks must equal the oracle ("EXISTS via unnest" caveat).
    let t_var = q
        .env
        .scopes
        .iter()
        .find(|(_, v)| v.name == "t")
        .map(|(id, _)| id)
        .unwrap();
    let distinct: HashSet<_> = result.tuples().iter().map(|t| t.get(t_var)).collect();
    assert_eq!(distinct.len(), oracle);

    let greedy = greedy_plan(&q.env, CostParams::default(), &q.plan).unwrap();
    let (gres, _) = execute(&store, &q.env, &greedy);
    let gdistinct: HashSet<_> = gres.tuples().iter().map(|t| t.get(t_var)).collect();
    assert_eq!(gdistinct, distinct, "greedy and optimal must agree");
}

/// Simulated I/O agrees *ordinally* with the optimizer's preference on
/// Query 2: the plan the optimizer rejects costs more to run.
#[test]
fn simulated_execution_confirms_preference() {
    let (store, model) = db();
    let src = r#"SELECT c FROM City c IN Cities WHERE c.mayor().name() == "Joe""#;
    let io_of = |config: OptimizerConfig| {
        let q = zql::compile(src, &model.schema, &model.catalog).unwrap();
        let out = OpenOodb::with_config(&q.env, config)
            .optimize(&q.plan, q.result_vars)
            .unwrap();
        let (_, stats) = execute(&store, &q.env, &out.plan);
        (out.cost.total(), stats.disk.total_s)
    };
    let (est_fast, sim_fast) = io_of(OptimizerConfig::all_rules());
    let (est_slow, sim_slow) = io_of(OptimizerConfig::without(&[
        rn::COLLAPSE_TO_INDEX_SCAN,
        rn::MAT_TO_JOIN,
    ]));
    assert!(est_fast < est_slow);
    assert!(
        sim_fast < sim_slow,
        "simulated I/O must agree: {sim_fast} vs {sim_slow}"
    );
}

/// Projection through a path (Query 3 flavour) delivers correct values.
#[test]
fn query3_projected_values_are_real() {
    let (store, model) = db();
    let src = r#"SELECT Newobject(c.mayor().age(), c.name())
FROM City c IN Cities WHERE c.mayor().name() == "Joe""#;
    let q = zql::compile(src, &model.schema, &model.catalog).unwrap();
    let out = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules())
        .optimize(&q.plan, q.result_vars)
        .unwrap();
    let (result, _) = execute(&store, &q.env, &out.plan);
    let oodb_exec::ExecResult::Rows(rows) = result else {
        panic!("projection must yield rows");
    };
    for row in &rows {
        let age = row[0].as_int().expect("age projected");
        assert!((18..90).contains(&age), "generated ages are 18..90");
        assert!(row[1].as_str().unwrap().starts_with("city-"));
    }
    // And the rows correspond exactly to the Joe-mayored cities.
    let oracle = store
        .members(model.ids.cities)
        .iter()
        .filter(|&&c| {
            store.eval_path(c, &[model.ids.city_mayor], model.ids.person_name) == Value::str("Joe")
        })
        .count();
    assert_eq!(rows.len(), oracle);
}

/// Set operations through the executor: cities with Joe mayors ∪/∩/\
/// big cities behave like real set algebra.
#[test]
fn set_operations_end_to_end() {
    use oodb_algebra::{CmpOp, SetOpKind};
    let (store, model) = db();
    let mut qb = QueryBuilder::new(model.schema.clone(), model.catalog.clone());
    let (_, c) = qb.get(model.ids.cities, "c");
    let big = qb.cmp_const(
        c,
        model.ids.city_population,
        CmpOp::Ge,
        Value::Int(1_000_000),
    );
    let small = qb.cmp_const(
        c,
        model.ids.city_population,
        CmpOp::Lt,
        Value::Int(1_000_000),
    );
    let env = qb.into_env();

    let scan = || oodb_algebra::PhysicalPlan {
        op: PhysicalOp::FileScan {
            coll: model.ids.cities,
            var: c,
        },
        children: vec![],
        est: Default::default(),
    };
    let filter = |pred| oodb_algebra::PhysicalPlan {
        op: PhysicalOp::Filter { pred },
        children: vec![scan()],
        est: Default::default(),
    };
    let setop = |kind, l, r| oodb_algebra::PhysicalPlan {
        op: PhysicalOp::HashSetOp { kind },
        children: vec![l, r],
        est: Default::default(),
    };

    let total = store.members(model.ids.cities).len();
    let (u, _) = execute(
        &store,
        &env,
        &setop(SetOpKind::Union, filter(big), filter(small)),
    );
    assert_eq!(u.len(), total, "big ∪ small = all");
    let (i, _) = execute(
        &store,
        &env,
        &setop(SetOpKind::Intersect, filter(big), filter(small)),
    );
    assert_eq!(i.len(), 0, "big ∩ small = ∅");
    let (d, _) = execute(
        &store,
        &env,
        &setop(SetOpKind::Difference, scan(), filter(big)),
    );
    let (b, _) = execute(&store, &env, &filter(big));
    assert_eq!(d.len() + b.len(), total);
}

/// The sort-order extension end-to-end: ORDER BY in ZQL, a Sort enforcer
/// or ordered index sweep in the plan, and genuinely ordered results.
#[test]
fn order_by_delivers_sorted_results() {
    use oodb_algebra::SortSpec;
    let (store, model) = db();

    // No index on population: the Sort enforcer must appear.
    let src = r#"SELECT c FROM City c IN Cities
WHERE c.population() >= 1000 ORDER BY c.population()"#;
    let q = zql::compile(src, &model.schema, &model.catalog).unwrap();
    assert_eq!(
        q.order,
        Some(SortSpec {
            var: q.env.scopes.iter().find(|(_, v)| v.name == "c").unwrap().0,
            field: model.ids.city_population,
        })
    );
    let out = OpenOodb::with_config(&q.env, OptimizerConfig::all_rules())
        .optimize_ordered(&q.plan, q.result_vars, q.order)
        .expect("ordered plan");
    assert!(
        out.plan
            .contains_op(&|op| matches!(op, PhysicalOp::Sort { .. })),
        "no population index exists, so a sort enforcer is required:\n{}",
        render_physical(&q.env, &out.plan)
    );
    let (result, _) = execute(&store, &q.env, &out.plan);
    let c = q.env.scopes.iter().find(|(_, v)| v.name == "c").unwrap().0;
    let pops: Vec<i64> = result
        .tuples()
        .iter()
        .map(|t| {
            store
                .read_field(t.get(c), model.ids.city_population)
                .as_int()
                .unwrap()
        })
        .collect();
    assert!(
        pops.windows(2).all(|w| w[0] <= w[1]),
        "results must be sorted"
    );
    assert!(!pops.is_empty());
}

/// When an index covers the ordering attribute, the ordered index sweep
/// competes with sort-after-scan and the optimizer picks by cost.
#[test]
fn ordered_index_scan_is_considered() {
    use oodb_algebra::SortSpec;
    let (store, model) = db();
    // Order tasks by time — the Tasks_time index covers it.
    let mut qb = QueryBuilder::new(model.schema.clone(), model.catalog.clone());
    let (plan, t) = qb.get(model.ids.tasks, "t");
    let env = qb.into_env();
    let order = Some(SortSpec {
        var: t,
        field: model.ids.task_time,
    });
    let out = OpenOodb::with_config(&env, OptimizerConfig::all_rules())
        .optimize_ordered(&plan, VarSet::single(t), order)
        .expect("ordered plan");
    // Either alternative is legal; whichever wins, execution is ordered.
    let (result, _) = execute(&store, &env, &out.plan);
    let times: Vec<i64> = result
        .tuples()
        .iter()
        .map(|tp| {
            store
                .read_field(tp.get(t), model.ids.task_time)
                .as_int()
                .unwrap()
        })
        .collect();
    assert_eq!(times.len(), store.members(model.ids.tasks).len());
    assert!(times.windows(2).all(|w| w[0] <= w[1]));

    // And the unordered goal must never pay for ordering.
    let unordered = OpenOodb::with_config(&env, OptimizerConfig::all_rules())
        .optimize(&plan, VarSet::single(t))
        .unwrap();
    assert!(unordered.cost.total() <= out.cost.total());
}

/// Range predicates through the B-tree (extension): a hand-built range
/// index scan returns exactly the oracle's rows, for every operator.
#[test]
fn range_index_scans_match_oracle() {
    use oodb_algebra::CmpOp;
    let (store, model) = db();
    let mut qb = QueryBuilder::new(model.schema.clone(), model.catalog.clone());
    let (_, t) = qb.get(model.ids.tasks, "t");
    let preds: Vec<(CmpOp, oodb_algebra::PredId)> = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ]
    .into_iter()
    .map(|op| {
        (
            op,
            qb.cmp_const(t, model.ids.task_time, op, Value::Int(250)),
        )
    })
    .collect();
    let env = qb.into_env();

    for (op, pred) in preds {
        let plan = oodb_algebra::PhysicalPlan {
            op: PhysicalOp::IndexScan {
                index: model.ids.idx_tasks_time,
                var: t,
                pred,
            },
            children: vec![],
            est: Default::default(),
        };
        let (result, _) = execute(&store, &env, &plan);
        let oracle = store
            .members(model.ids.tasks)
            .iter()
            .filter(|&&o| {
                store
                    .read_field(o, model.ids.task_time)
                    .partial_cmp_val(&Value::Int(250))
                    .is_some_and(|ord| op.test(ord))
            })
            .count();
        assert_eq!(result.len(), oracle, "operator {op:?}");
    }
}

/// With collected histograms, a highly selective range predicate can pull
/// the optimizer toward an index plan, and estimates tighten either way.
#[test]
fn histograms_change_range_estimates() {
    use oodb_core::model::OodbModel;
    let (store, model) = db();
    let with_stats = store.collect_statistics(&[], 32);

    let build = |catalog: &Catalog| {
        let mut qb = QueryBuilder::new(model.schema.clone(), catalog.clone());
        let (_, t) = qb.get(model.ids.tasks, "t");
        let pred = qb.cmp_const(
            t,
            model.ids.task_time,
            oodb_algebra::CmpOp::Le,
            Value::Int(20),
        );
        (qb.into_env(), pred)
    };
    let (env0, p0) = build(&model.catalog);
    let m0 = OodbModel::new(&env0, CostParams::default(), OptimizerConfig::all_rules());
    let naive = m0.selectivity(p0);
    assert!((naive - 1.0 / 3.0).abs() < 1e-9, "1993 default for ranges");

    let (env1, p1) = build(&with_stats);
    let m1 = OodbModel::new(&env1, CostParams::default(), OptimizerConfig::all_rules());
    let refined = m1.selectivity(p1);
    // True selectivity: times are {10,...,500}, so time<=20 covers 2/50.
    assert!(refined < 0.15, "histogram must see the skew: {refined}");
}

/// Merge join (sort-order extension): a value equi-join between two
/// scans — namesake employees across the Employees set and the Job
/// extent — optimizes to EITHER hash or merge join by cost; forcing merge
/// join gives the same result set as hash join, verified by execution.
#[test]
fn merge_join_agrees_with_hash_join() {
    use oodb_core::config::rule_names as rn;
    let (store, model) = db();
    // Join on name: task titles never match, so use employee/person name
    // worlds: employees vs employees (self-join on names is huge);
    // keep it tractable: cities vs capitals? Capitals set is tiny (8 at
    // this scale). Join cities and capitals on country: value join on
    // the name attribute of their countries is convoluted — simplest
    // honest value join: Task.title == Task.title self-join is identity.
    // Use Cities × Capitals on population (ints, sparse matches).
    let mut qb = QueryBuilder::new(model.schema.clone(), model.catalog.clone());
    let (cities, c) = qb.get(model.ids.cities, "c");
    let (caps, k) = qb.get(model.ids.capitals, "k");
    let pred = qb.eq_attr(c, model.ids.city_population, k, model.ids.city_population);
    let plan = qb.join(cities, caps, pred);
    let env = qb.into_env();
    let result_vars = VarSet::from_iter([c, k]);

    // Hash-join-only and merge-join-only configurations.
    let hash_only = OpenOodb::with_config(&env, OptimizerConfig::without(&[rn::MERGE_JOIN]))
        .optimize(&plan, result_vars)
        .expect("hash plan");
    let merge_only = OpenOodb::with_config(
        &env,
        OptimizerConfig::without(&[rn::HYBRID_HASH_JOIN, rn::POINTER_JOIN]),
    )
    .optimize(&plan, result_vars)
    .expect("merge plan");
    assert!(hash_only
        .plan
        .contains_op(&|op| matches!(op, PhysicalOp::HybridHashJoin { .. })));
    assert!(
        merge_only
            .plan
            .contains_op(&|op| matches!(op, PhysicalOp::MergeJoin { .. })),
        "{}",
        render_physical(&env, &merge_only.plan)
    );
    // Merge join's inputs must be sorted (Sort enforcers beneath).
    assert!(merge_only
        .plan
        .contains_op(&|op| matches!(op, PhysicalOp::Sort { .. })));

    let (r_hash, _) = execute(&store, &env, &hash_only.plan);
    let (r_merge, _) = execute(&store, &env, &merge_only.plan);
    let set_h: std::collections::HashSet<_> = r_hash
        .tuples()
        .iter()
        .map(|t| (t.get(c), t.get(k)))
        .collect();
    let set_m: std::collections::HashSet<_> = r_merge
        .tuples()
        .iter()
        .map(|t| (t.get(c), t.get(k)))
        .collect();
    assert_eq!(set_h, set_m, "join algorithms must agree");
    // Sanity: both match the nested-loop oracle.
    let oracle = store
        .members(model.ids.cities)
        .iter()
        .flat_map(|&cc| {
            store
                .members(model.ids.capitals)
                .iter()
                .map(move |&kk| (cc, kk))
        })
        .filter(|&(cc, kk)| {
            store.read_field(cc, model.ids.city_population)
                == store.read_field(kk, model.ids.city_population)
        })
        .count();
    assert_eq!(set_h.len(), oracle);
}
